"""The asyncio serving engine: admission, retries, ladder, watchdog.

One :class:`ServeEngine` accepts ciphertext-op requests from many
tenants and resolves every single one of them — the central robustness
invariant, mechanically guaranteed by a watchdog: ``submit`` awaits the
worker's future through :func:`~repro.serve.deadline.with_deadline`
with a grace margin beyond the request deadline, so even a worker that
loses a completion (a chaos ``serve_drop``) cannot hang a caller.

The request path, in order:

1. **Admission** — per-tenant token bucket, then the health-scaled
   queue-depth gate (:class:`~repro.serve.admission
   .AdmissionController`).  Both reject with ``retry_after`` hints
   before any work is queued (load shedding happens at the door, where
   it is cheapest).
2. **Queue** — a single FIFO drained by ``workers`` concurrent worker
   tasks; queue wait is attributed to the ``queue`` phase.
3. **Attempts** — each attempt picks the lowest ladder level whose
   circuit breaker admits it, bounds the dispatch+compute in a
   per-attempt sub-deadline, verifies the result, and on failure either
   retries (exponential backoff with deterministic jitter, spending the
   tenant's retry budget) or walks the degradation ladder
   (level 1 = clamped numpy, level 2 = per-row golden — the
   :class:`~repro.fhe.backend.IntegrityBackend` ladder).
4. **Resolution** — a typed :class:`~repro.serve.requests.ServeResult`;
   exceptions never escape ``submit``.

Every request is one trace: ``submit`` opens a ``serve.request`` root
span via the context-propagating API (``Observer.begin_request``), the
minted :class:`~repro.obs.context.TraceContext` rides the ticket
across the queue, and the worker re-enters it with
:func:`~repro.obs.context.trace_scope` — so the queue wait, every
attempt (including retries and degrade steps), the backend kernels the
executor dispatches, and any journal records all carry the same
``trace_id`` and stitch under the root even though they run on
interleaved tasks.  Phase durations (queue / dispatch / compute /
verify) are *live* spans with real wall extents plus histograms, so
``python -m repro.obs`` renders serving runs the same way it renders
kernel runs.  All of it sits behind the guarded obs hook: with
observability off, no context is minted and no span exists.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs import current_obs_hook
from repro.obs.context import TraceContext, bind_trace, unbind_trace
from repro.serve.admission import AdmissionController
from repro.serve.breaker import CircuitBreaker
from repro.serve.chaos import ChaosInjector, ChaosPlan
from repro.serve.deadline import Deadline, with_deadline
from repro.serve.errors import DeadlineExceeded, EngineClosedError
from repro.serve.limits import RetryBudget, RetryPolicy, TokenBucket
from repro.serve.requests import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ServeRequest,
    ServeResult,
)

__all__ = ["ServeConfig", "ServeEngine"]

#: Deepest degradation-ladder level (mirrors IntegrityBackend).
_MAX_LEVEL = 2


@dataclass
class ServeConfig:
    """Engine knobs (defaults sized for toy-parameter serving)."""

    workers: int = 8
    queue_limit: int = 256
    #: Per-attempt cap carved out of the request deadline.
    attempt_timeout: float = 0.1
    #: Extra margin beyond the deadline before the watchdog resolves a
    #: request as timed out no matter what the worker is doing.
    watchdog_grace: float = 0.25
    max_attempts: int = 4
    #: Per-tenant token bucket (requests/second, burst size).
    tenant_rate: float = 2000.0
    tenant_burst: float = 200.0
    #: Per-tenant retry budget: fraction of completions earned back.
    retry_ratio: float = 0.2
    retry_initial: float = 5.0
    retry_cap: float = 20.0
    #: Circuit breakers guarding ladder levels 0 and 1.
    breaker_threshold: int = 5
    breaker_reset: float = 0.25
    breaker_probes: int = 2
    #: Backoff before a same-level retry.
    backoff_base: float = 0.002
    backoff_multiplier: float = 2.0
    backoff_cap: float = 0.02
    seed: int = 0


@dataclass
class _Ticket:
    """One queued request plus its resolution future."""

    request: ServeRequest
    future: "asyncio.Future[ServeResult]"
    queued_at: float
    plan: ChaosPlan = field(default_factory=ChaosPlan)
    #: The request's trace context, carried across the queue boundary
    #: (workers never share the submitter's contextvars); None when
    #: observability is off — no ids are minted, nothing is carried.
    trace_ctx: TraceContext | None = None


class ServeEngine:
    """Multi-tenant async scheduler over one executor."""

    def __init__(self, executor: Any, config: ServeConfig | None = None,
                 chaos: ChaosInjector | None = None,
                 journal: Any = None):
        self.executor = executor
        self.config = ServeConfig() if config is None else config
        self.chaos = chaos
        #: Optional :class:`repro.recover.journal.RequestJournal`: when
        #: set, every admitted request is durably journaled before it
        #: queues and its resolution recorded before submit returns, so
        #: a restarted engine can re-enqueue the admitted-but-unanswered
        #: set (:meth:`resume_pending`).
        self._journal = journal
        self.clock = time.monotonic
        self.admission = AdmissionController(
            self.config.queue_limit,
            health=getattr(executor, "health", None))
        self.retry_policy = RetryPolicy(
            base=self.config.backoff_base,
            multiplier=self.config.backoff_multiplier,
            max_delay=self.config.backoff_cap,
            seed=self.config.seed)
        self.breakers = {
            level: CircuitBreaker(self.config.breaker_threshold,
                                  self.config.breaker_reset,
                                  self.config.breaker_probes,
                                  clock=self.clock)
            for level in (0, 1)
        }
        self._buckets: dict[str, TokenBucket] = {}
        self._budgets: dict[str, RetryBudget] = {}
        self._queue: asyncio.Queue[_Ticket | None] = asyncio.Queue()
        self._depth = 0  # queued + executing (admission-visible backlog)
        self._workers: list[asyncio.Task[None]] = []
        self._closed = False
        self.counters: dict[str, int] = {
            "submitted": 0, "resolved": 0, "ok": 0, "degraded": 0,
            "rejected_rate": 0, "rejected_capacity": 0, "timeout": 0,
            "error": 0, "retries": 0, "integrity_failures": 0,
            "attempt_timeouts": 0, "watchdog_fires": 0, "degrade_steps": 0,
            "shutdown_resolved": 0, "journal_replayed": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._workers:
            return
        loop = asyncio.get_running_loop()
        self._workers = [loop.create_task(self._worker_loop(i))
                         for i in range(self.config.workers)]

    async def close(self, drain: bool = True) -> None:
        """Stop admitting and stop workers — resolving **every**
        outstanding ticket with a typed result, never hanging a caller.

        ``drain=True`` (default) lets already-queued work finish before
        the workers exit; ``drain=False`` resolves queued-but-unstarted
        tickets immediately as typed shutdown errors (in-flight ops
        still run to completion).  Either way a final sweep resolves
        tickets that raced admission — a ``submit`` that passed
        ``_admit`` just before ``_closed`` was set enqueues *behind*
        the worker stop sentinels, and without the sweep its future
        would only resolve when the caller's watchdog fired.
        """
        self._closed = True
        if not drain:
            self._sweep_queue()
        for _ in self._workers:
            self._queue.put_nowait(None)
        for task in self._workers:
            await task
        self._workers = []
        self._sweep_queue()

    def _sweep_queue(self) -> None:
        """Resolve every ticket still in the queue with a typed
        shutdown result (the close-time counterpart of the watchdog)."""
        leftover: list[_Ticket | None] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            leftover.append(item)
        for item in leftover:
            if item is None:
                # Preserve unconsumed worker stop sentinels.
                self._queue.put_nowait(item)
                continue
            self._depth = max(0, self._depth - 1)
            if item.future.done():
                continue
            self.counters["shutdown_resolved"] += 1
            obs = current_obs_hook()
            if obs is not None:
                obs.count("serve.shutdown_resolved")
            item.future.set_result(ServeResult(
                item.request.request_id, item.request.tenant,
                item.request.op, STATUS_ERROR,
                error=EngineClosedError.__name__))

    async def __aenter__(self) -> "ServeEngine":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- admission ---------------------------------------------------------

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.config.tenant_rate,
                                 self.config.tenant_burst, self.clock)
            self._buckets[tenant] = bucket
        return bucket

    def _budget(self, tenant: str) -> RetryBudget:
        budget = self._budgets.get(tenant)
        if budget is None:
            budget = RetryBudget(self.config.retry_ratio,
                                 self.config.retry_initial,
                                 self.config.retry_cap)
            self._budgets[tenant] = budget
        return budget

    def _reject(self, request: ServeRequest, reason: str,
                retry_after: float) -> ServeResult:
        key = ("rejected_rate" if reason == "rate_limited"
               else "rejected_capacity")
        self.counters[key] += 1
        obs = current_obs_hook()
        if obs is not None:
            obs.count(f"serve.{key}")
        return ServeResult(request.request_id, request.tenant, request.op,
                           STATUS_REJECTED, error=reason,
                           retry_after=retry_after)

    def _admit(self, request: ServeRequest) -> ServeResult | None:
        """Fast-fail admission; None means the request may queue."""
        if self._closed:
            return ServeResult(request.request_id, request.tenant,
                               request.op, STATUS_ERROR,
                               error=EngineClosedError.__name__)
        bucket = self._bucket(request.tenant)
        if not bucket.try_acquire():
            return self._reject(request, "rate_limited",
                                bucket.retry_after())
        if not self.admission.admit(self._depth):
            return self._reject(
                request, "overloaded",
                self.admission.retry_after(self._depth,
                                           self.config.workers))
        return None

    # -- submission --------------------------------------------------------

    async def submit(self, request: ServeRequest) -> ServeResult:
        """Resolve one request; always returns, never raises.

        This is the trace boundary: one ``submit`` is one trace.  The
        root ``serve.request`` span opens *before* admission (so even
        rejections are traced) and closes with the final status; the
        minted context rides the ticket so the worker's spans stitch
        under this root.
        """
        obs = current_obs_hook()
        if obs is not None:
            handle = obs.begin_request(
                "serve.request", cat="serve", request=request.request_id,
                tenant=request.tenant, op=request.op)
            status = "unresolved"
            try:
                result = await self._submit(request, handle.ctx)
                status = result.status
                return result
            finally:
                obs = current_obs_hook()
                if obs is not None:
                    obs.end_request(handle, status=status)
        return await self._submit(request, None)

    async def _submit(self, request: ServeRequest,
                      trace_ctx: TraceContext | None) -> ServeResult:
        self.counters["submitted"] += 1
        submitted_at = self.clock()
        rejection = self._admit(request)
        if rejection is not None:
            self.counters["resolved"] += 1
            rejection.latency = self.clock() - submitted_at
            self._note_tenant(request, rejection)
            return rejection
        if self._journal is not None:
            # Durable point: once this record is on disk, a crash
            # between here and resolution leaves the request in the
            # journal's pending set for resume_pending().
            self._journal.record_submit(
                request.request_id, tenant=request.tenant, op=request.op,
                timeout_s=max(request.deadline.remaining(), 0.0),
                payload=request.payload)
        loop = asyncio.get_running_loop()
        future: asyncio.Future[ServeResult] = loop.create_future()
        plan = (self.chaos.plan_for(request.request_id)
                if self.chaos is not None else ChaosPlan())
        self._depth += 1
        self._queue.put_nowait(
            _Ticket(request, future, submitted_at, plan,
                    trace_ctx=trace_ctx))
        watchdog = Deadline(
            request.deadline.expires_at + self.config.watchdog_grace,
            request.deadline.clock)
        try:
            result = await with_deadline(asyncio.shield(future), watchdog)
        except DeadlineExceeded:
            # The last line of defense: a worker lost this request (or
            # is wedged past the grace margin).  Resolve it as a typed
            # timeout so the caller never hangs; if the worker finishes
            # later its set_result finds the future already done.
            self.counters["watchdog_fires"] += 1
            obs = current_obs_hook()
            if obs is not None:
                obs.count("serve.watchdog_fires")
            if not future.done():
                future.cancel()
            result = ServeResult(request.request_id, request.tenant,
                                 request.op, STATUS_TIMEOUT,
                                 error="WatchdogTimeout")
            self.counters["timeout"] += 1
        self.counters["resolved"] += 1
        if self._journal is not None:
            self._journal.record_resolve(request.request_id, result.status)
        result.latency = self.clock() - submitted_at
        self._note_tenant(request, result)
        return result

    def _note_tenant(self, request: ServeRequest,
                     result: ServeResult) -> None:
        """Per-tenant SLO series for one resolved request: cumulative
        request/bad counters (burn-rate numerators ride counter deltas
        across the snapshot ring) and the latency quantile sketch —
        plus the ring tick that turns resolutions into periodic
        samples.  Rejections count as requests but not as budget burn:
        load shedding is the mitigation, not the incident."""
        obs = current_obs_hook()
        if obs is not None:
            base = f"serve.tenant.{request.tenant}"
            obs.count(f"{base}.requests")
            if result.status in (STATUS_ERROR, STATUS_TIMEOUT):
                obs.count(f"{base}.bad")
            obs.observe_value(f"{base}.latency_s", result.latency)
            obs.tick_ring()

    async def resume_pending(self) -> list[ServeResult]:
        """Re-submit every journaled request that was admitted but never
        resolved (the restart half of the request journal).

        Each pending request is re-enqueued with a fresh deadline of
        its original budget; results resolve through the normal path
        (and are journaled as resolved, emptying the pending set).
        """
        if self._journal is None:
            return []
        results = []
        for entry in self._journal.pending():
            self.counters["journal_replayed"] += 1
            obs = current_obs_hook()
            if obs is not None:
                obs.count("serve.journal_replayed")
            request = ServeRequest(
                entry["id"], entry["tenant"], entry["op"],
                Deadline.after(entry["timeout_s"]),
                payload=entry.get("payload", 0))
            results.append(await self.submit(request))
        return results

    # -- worker loop -------------------------------------------------------

    async def _worker_loop(self, index: int) -> None:
        while True:
            ticket = await self._queue.get()
            if ticket is None:
                return
            try:
                result = await self._handle(ticket)
            except Exception as exc:  # noqa: BLE001 - typed resolution
                result = ServeResult(
                    ticket.request.request_id, ticket.request.tenant,
                    ticket.request.op, STATUS_ERROR,
                    error=type(exc).__name__)
                self.counters["error"] += 1
            finally:
                self._depth = max(0, self._depth - 1)
            if not ticket.future.done():
                ticket.future.set_result(result)

    def _base_level(self) -> int:
        """Lowest ladder level whose breaker admits traffic (level 2,
        the golden path, is always available)."""
        for level in (0, 1):
            if self.breakers[level].allow():
                return level
        return _MAX_LEVEL

    def _finish(self, ticket: _Ticket, result: ServeResult,
                phases: dict[str, int]) -> ServeResult:
        result.phases = phases
        self.counters[result.status] = self.counters.get(result.status, 0) + 1
        self._budget(ticket.request.tenant).deposit()
        service = (self.clock() - ticket.queued_at
                   - phases.get("queue", 0) / 1e9)
        self.admission.observe_service(max(0.0, service))
        obs = current_obs_hook()
        if obs is not None:
            # Spans are live now (begun under the request's trace
            # context in _handle_attempts); only the histograms and
            # counters are recorded at resolution time.
            for phase in ("queue", "dispatch", "compute", "verify"):
                obs.observe_value(f"serve.phase.{phase}_ns",
                                  phases.get(phase, 0))
            obs.count(f"serve.status.{result.status}")
            obs.observe_value("serve.attempts", result.attempts)
        return result

    async def _handle(self, ticket: _Ticket) -> ServeResult:
        # Re-enter the request's trace on this worker task: the queue
        # does not carry contextvars, the ticket does.  Everything
        # below (and every backend span the executor opens) is stamped
        # with the request's trace_id until the unbind — which must
        # run on every exit, or the worker's next ticket would inherit
        # a stale trace.
        request = ticket.request
        plan = ticket.plan
        token = (bind_trace(ticket.trace_ctx)
                 if ticket.trace_ctx is not None else None)
        try:
            dispatch_start = self.clock()
            phases = {"queue": int((dispatch_start - ticket.queued_at) * 1e9),
                      "dispatch": 0, "compute": 0, "verify": 0}
            obs = current_obs_hook()
            if obs is not None:
                # The queue wait just ended: record it as an already-elapsed
                # span ([dequeue - wait, dequeue]) stitched under the root.
                obs.record("serve.queue", cat="serve", dur_ns=phases["queue"],
                           request=request.request_id)
            if request.deadline.expired():
                return self._finish(ticket, ServeResult(
                    request.request_id, request.tenant, request.op,
                    STATUS_TIMEOUT, error=DeadlineExceeded.__name__), phases)
            if plan.delay:
                # Chaos: delayed dispatch (never past the deadline).
                await asyncio.sleep(min(plan.delay, request.deadline.remaining()))
            attempts = 0
            retries = 0
            level = self._base_level()
            while True:
                attempts += 1
                dispatch_ns = int((self.clock() - dispatch_start) * 1e9)
                phases["dispatch"] += dispatch_ns
                obs = current_obs_hook()
                if obs is not None:
                    obs.record("serve.dispatch", cat="serve",
                               dur_ns=dispatch_ns, attempt=attempts)
                    # Live span: retries and degrade steps each get their
                    # own serve.attempt, and the executor's backend spans
                    # nest inside it structurally.
                    obs.begin("serve.attempt", cat="serve",
                              request=request.request_id, attempt=attempts,
                              level=level)
                compute_start = self.clock()
                value: Any = None
                verified = False
                attempt_timed_out = False
                try:
                    try:
                        value = await with_deadline(
                            self._run_attempt(request, level, attempts, plan),
                            request.deadline.bounded(self.config.attempt_timeout))
                    except DeadlineExceeded:
                        attempt_timed_out = True
                        self.counters["attempt_timeouts"] += 1
                    verify_start = self.clock()
                    compute_ns = int((verify_start - compute_start) * 1e9)
                    phases["compute"] += compute_ns
                    obs = current_obs_hook()
                    if obs is not None:
                        obs.record("serve.compute", cat="serve",
                                   dur_ns=compute_ns, level=level)
                    if not attempt_timed_out:
                        verified = bool(self.executor.verify(request, value))
                        verify_ns = int((self.clock() - verify_start) * 1e9)
                        phases["verify"] += verify_ns
                        obs = current_obs_hook()
                        if obs is not None:
                            obs.record("serve.verify", cat="serve",
                                       dur_ns=verify_ns, verified=verified)
                finally:
                    obs = current_obs_hook()
                    if obs is not None:
                        obs.end(verified=verified, timed_out=attempt_timed_out)
                if verified:
                    if level in self.breakers:
                        self.breakers[level].record_success()
                    status = STATUS_OK if level == 0 else STATUS_DEGRADED
                    return self._finish(ticket, ServeResult(
                        request.request_id, request.tenant, request.op, status,
                        level=level, attempts=attempts, retries=retries,
                        value=value), phases)
                # Attempt failed: integrity mismatch or a lost completion.
                if not attempt_timed_out:
                    self.counters["integrity_failures"] += 1
                    obs = current_obs_hook()
                    if obs is not None:
                        obs.count("serve.integrity_failures")
                if level in self.breakers:
                    self.breakers[level].record_failure()
                if request.deadline.expired():
                    return self._finish(ticket, ServeResult(
                        request.request_id, request.tenant, request.op,
                        STATUS_TIMEOUT, level=level, attempts=attempts,
                        retries=retries,
                        error=DeadlineExceeded.__name__), phases)
                dispatch_start = self.clock()
                may_retry = (attempts < self.config.max_attempts
                             and self._budget(request.tenant).try_spend())
                if may_retry:
                    retries += 1
                    self.counters["retries"] += 1
                    pause = self.retry_policy.delay(request.request_id, retries)
                    await asyncio.sleep(min(pause,
                                            request.deadline.remaining()))
                    level = max(level, self._base_level())
                    continue
                if level < _MAX_LEVEL:
                    # Budget or attempts exhausted at this level: degrade.
                    level += 1
                    self.counters["degrade_steps"] += 1
                    obs = current_obs_hook()
                    if obs is not None:
                        obs.count("serve.degrade_steps")
                    continue
                return self._finish(ticket, ServeResult(
                    request.request_id, request.tenant, request.op,
                    STATUS_ERROR, level=level, attempts=attempts,
                    retries=retries, error="IntegrityExhausted"), phases)

        finally:
            if token is not None:
                unbind_trace(token)

    async def _run_attempt(self, request: ServeRequest, level: int,
                           attempt: int, plan: ChaosPlan) -> Any:
        """One dispatch against the executor, with chaos applied.

        Runs inside the attempt's deadline wrapper, so a chaos drop
        (an awaitable that never resolves) is reclaimed by cancellation
        rather than hanging the worker.
        """
        if attempt <= plan.drop_attempts:
            # Chaos: the completion for this attempt is lost.  Park on
            # an event nobody sets; only cancellation releases it.
            await asyncio.Event().wait()
        value = await self.executor.run(request, level,
                                        straggle=plan.straggle)
        if level == 0 and attempt <= plan.corrupt_attempts:
            # Chaos: corrupt the level-0 result before verification —
            # the ABFT-analogue failure the retry/degrade path absorbs.
            value = self.executor.corrupt(value)
        return value

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict[str, int | float]:
        """Counter snapshot plus breaker state."""
        out: dict[str, int | float] = dict(self.counters)
        out["queue_capacity"] = self.admission.capacity()
        for level, breaker in self.breakers.items():
            out[f"breaker{level}_opened"] = breaker.opened_total
        return out
