"""Admission control: bounded queues scaled by pool health.

The controller owns one number — the queue-depth cap — and shrinks it
with backend capacity: ``capacity = queue_limit * health_fraction``,
where the health fraction comes from whatever the executor serves on
(for a :class:`~repro.accel.parallel.ParallelVpuPool` it is
``healthy / total`` VPUs, via :class:`PoolHealth`).  Retired units
therefore shed queued work *proactively* instead of letting latency
grow until deadlines do the shedding.

Rejections carry a ``retry_after`` estimate derived from Little's law:
current backlog divided by observed drain rate.

The controller is also the consumer of the SLO engine's typed alerts
(:class:`~repro.obs.slo.SloAlert`): :meth:`AdmissionController
.note_slo_alert` folds burn-rate pressure into a multiplicative
capacity scale, so a tenant burning its error budget sheds load at the
door instead of burning deadline timeouts.  The wiring is explicit —
the serving loop (or operator) calls ``note_slo_alert`` with whatever
``SloEngine.evaluate`` fired; nothing here reads the obs hook, keeping
the obs-off path byte-for-byte identical.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["AdmissionController", "PoolHealth"]


class PoolHealth:
    """Health fraction of a :class:`~repro.accel.parallel.ParallelVpuPool`
    (``healthy_units / num_vpus``) as a zero-argument callable."""

    def __init__(self, pool) -> None:
        self.pool = pool

    def __call__(self) -> float:
        return len(self.pool.healthy_units) / self.pool.num_vpus


class AdmissionController:
    """Queue-depth gate with health-scaled capacity."""

    def __init__(self, queue_limit: int,
                 health: Callable[[], float] | None = None,
                 min_capacity: int = 1):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.queue_limit = queue_limit
        self.health = health if health is not None else (lambda: 1.0)
        self.min_capacity = min_capacity
        #: Exponentially-smoothed per-request service estimate feeding
        #: the retry_after hint (seconds).
        self.service_estimate = 0.001
        self._alpha = 0.05
        #: Multiplicative capacity scale under SLO pressure (1.0 = no
        #: pressure); shrunk by :meth:`note_slo_alert`, restored by
        #: :meth:`clear_slo_pressure`.
        self.slo_scale = 1.0

    def capacity(self) -> int:
        """Current queue-depth cap, shrunk by backend health and SLO
        pressure."""
        fraction = min(1.0, max(0.0, self.health())) * self.slo_scale
        return max(self.min_capacity, int(self.queue_limit * fraction))

    def note_slo_alert(self, alert) -> float:
        """Fold one fired :class:`~repro.obs.slo.SloAlert` into the
        capacity scale: page-severity burn shrinks hard (x0.7, floor
        0.25), anything else gently (x0.9, floor 0.5).  Returns the new
        scale."""
        if alert.severity == "page":
            self.slo_scale = max(0.25, self.slo_scale * 0.7)
        else:
            self.slo_scale = max(0.5, self.slo_scale * 0.9)
        return self.slo_scale

    def clear_slo_pressure(self) -> None:
        """Restore full capacity once the alerts stop firing."""
        self.slo_scale = 1.0

    def admit(self, depth: int) -> bool:
        """May a request join a queue currently ``depth`` deep?"""
        return depth < self.capacity()

    def observe_service(self, seconds: float) -> None:
        """Fold one completed request's service time into the drain
        estimate."""
        if seconds > 0:
            self.service_estimate += self._alpha * (seconds
                                                    - self.service_estimate)

    def retry_after(self, depth: int, workers: int) -> float:
        """Little's-law hint: time for the backlog beyond capacity to
        drain through ``workers`` parallel servers."""
        excess = max(1, depth - self.capacity() + 1)
        return excess * self.service_estimate / max(1, workers)
