"""Deadline propagation and the sanctioned cancellation wrapper.

A :class:`Deadline` is an absolute expiry on a monotonic clock, created
once at admission and carried by the request through every queue hop,
retry, and degradation step — remaining budget shrinks as wall time
passes, it is never reset per attempt.

:func:`with_deadline` is the **only** way serving code may await
backend work (kernel dispatch, keyswitch, NTT batches, executor calls):
it bounds the awaitable by the deadline's remaining budget and converts
the timeout into the typed
:class:`~repro.serve.errors.DeadlineExceeded`, cancelling the wrapped
task so no work outlives its request.  Lint rule FHC011 statically
enforces this — a bare ``await backend.keyswitch(...)`` inside
``repro.serve`` is a finding.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable, TypeVar

from repro.serve.errors import DeadlineExceeded

T = TypeVar("T")

__all__ = ["Deadline", "with_deadline"]


class Deadline:
    """An absolute expiry instant on a monotonic clock."""

    __slots__ = ("expires_at", "clock")

    def __init__(self, expires_at: float,
                 clock: Callable[[], float] = time.monotonic):
        self.expires_at = expires_at
        self.clock = clock

    @classmethod
    def after(cls, timeout: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``timeout`` seconds from now."""
        return cls(clock() + timeout, clock)

    def remaining(self) -> float:
        """Seconds left before expiry (clamped at zero)."""
        return max(0.0, self.expires_at - self.clock())

    def expired(self) -> bool:
        return self.clock() >= self.expires_at

    def bounded(self, cap: float) -> "Deadline":
        """A per-attempt sub-deadline: ``min(this deadline, now + cap)``.

        Retries carve their attempt timeout out of the request's
        remaining budget — an attempt can never extend the request.
        """
        return Deadline(min(self.expires_at, self.clock() + cap), self.clock)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(remaining={self.remaining():.4f}s)"


async def with_deadline(awaitable: Awaitable[T], deadline: Deadline) -> T:
    """Await ``awaitable`` for at most the deadline's remaining budget.

    On expiry the inner task is cancelled (asyncio guarantees the
    cancellation is delivered before :class:`TimeoutError` propagates)
    and the typed :class:`DeadlineExceeded` is raised, so the caller
    can classify the failure without string matching.  An
    already-expired deadline still lets an already-completed awaitable
    return its value — a finished result is never discarded.
    """
    try:
        return await asyncio.wait_for(awaitable, timeout=deadline.remaining())
    except asyncio.TimeoutError:
        raise DeadlineExceeded(
            f"deadline expired (budget exhausted at "
            f"{deadline.expires_at:.6f})") from None
