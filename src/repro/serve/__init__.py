"""``repro.serve`` — a resilient async multi-tenant FHE serving layer.

The paper's VPU is the compute engine; this package is the machine
room around it: an asyncio scheduler that accepts ciphertext ops
(keyswitch, hmult, hrot, rescale) from many tenants and drives them
through the kernel-backend stack with the robustness properties a
service needs —

* **deadlines** propagate end-to-end and cancel abandoned work
  (:mod:`repro.serve.deadline`, enforced statically by lint FHC011);
* **admission control** sheds load at the door: per-tenant token
  buckets and a queue bound that shrinks with backend health
  (:mod:`repro.serve.limits`, :mod:`repro.serve.admission`);
* **retries** are budgeted per tenant with deterministic-jitter
  backoff, and persistent integrity failures walk the same degradation
  ladder as :class:`repro.fhe.backend.IntegrityBackend` (unclamped ->
  clamped -> golden), gated by per-level **circuit breakers**
  (:mod:`repro.serve.breaker`);
* a **watchdog** guarantees every submitted request resolves with a
  typed status — the invariant the **chaos campaign**
  (:mod:`repro.serve.chaos`, ``python -m repro.serve --chaos``) attacks
  with delayed dispatches, dropped completions, stragglers, and
  injected corruptions.

``python -m repro.serve`` benchmarks a bursty synthetic trace into
``BENCH_serve.json`` (schema-1 envelope, obs phase attribution).
"""

from repro.serve.admission import AdmissionController, PoolHealth
from repro.serve.breaker import CircuitBreaker
from repro.serve.chaos import (
    ChaosInjector,
    ChaosSpec,
    default_chaos_specs,
    run_chaos_campaign,
)
from repro.serve.deadline import Deadline, with_deadline
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    EngineClosedError,
    PoolExhaustedError,
    RejectedError,
    RetryBudgetExhausted,
    ServeError,
)
from repro.serve.executor import CkksOpExecutor, SimulatedExecutor
from repro.serve.limits import RetryBudget, RetryPolicy, TokenBucket
from repro.serve.requests import OPS, ServeRequest, ServeResult

__all__ = [
    "OPS",
    "AdmissionController",
    "ChaosInjector",
    "ChaosSpec",
    "CircuitBreaker",
    "CircuitOpenError",
    "CkksOpExecutor",
    "Deadline",
    "DeadlineExceeded",
    "EngineClosedError",
    "PoolExhaustedError",
    "PoolHealth",
    "RejectedError",
    "RetryBudget",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "ServeConfig",
    "ServeEngine",
    "ServeError",
    "ServeRequest",
    "ServeResult",
    "SimulatedExecutor",
    "TokenBucket",
    "default_chaos_specs",
    "run_chaos_campaign",
    "with_deadline",
]
