"""Serving benchmark: bursty open/closed-loop traces -> BENCH_serve.json.

The benchmark pushes a synthetic multi-tenant trace
(:mod:`repro.serve.trace`) through a live :class:`~repro.serve.engine
.ServeEngine` over the :class:`~repro.serve.executor.SimulatedExecutor`
(seeded service times — the scheduling machinery is what is being
measured) and reports latency percentiles, throughput, and the
robustness counters (shed / retried / degraded / timed out), wrapped in
the same ``schema: 1`` envelope as every other ``BENCH_*.json`` in the
repo, validated by :func:`repro.obs.export.validate_envelope`.

Open-loop drivers pace arrivals from the trace offsets (load does not
slow down because the server is slow — the shedding path gets
exercised); the closed-loop driver instead runs a fixed client fleet
with think times (latency feedback throttles offered load).
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.obs.export import host_envelope
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.executor import SimulatedExecutor
from repro.serve.requests import ServeResult
from repro.serve.trace import TraceConfig, TraceItem, generate_trace, materialize

__all__ = ["run_bench", "run_closed_loop", "run_trace"]


async def run_trace(engine: ServeEngine, items: Sequence[TraceItem],
                    paced: bool = True) -> list[ServeResult]:
    """Open-loop driver: submit each item at its trace offset."""
    async with engine:
        loop = asyncio.get_running_loop()
        start = loop.time()
        tasks: list[asyncio.Task[ServeResult]] = []
        for item in items:
            if paced:
                lag = start + item.offset - loop.time()
                if lag > 0:
                    await asyncio.sleep(lag)
            tasks.append(loop.create_task(
                engine.submit(materialize(item))))
        gathered = await asyncio.gather(*tasks)
    return list(gathered)


async def run_closed_loop(engine: ServeEngine, items: Sequence[TraceItem],
                          clients: int = 32,
                          think_time: float = 0.001) -> list[ServeResult]:
    """Closed-loop driver: ``clients`` workers pull from one shared
    iterator, waiting for each result (plus think time) before the
    next submission."""
    iterator = iter(items)
    results: list[ServeResult] = []

    async def client() -> None:
        for item in iterator:
            results.append(await engine.submit(materialize(item)))
            if think_time > 0:
                await asyncio.sleep(think_time)

    async with engine:
        await asyncio.gather(*(client() for _ in range(clients)))
    return results


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def summarize(results: Sequence[ServeResult],
              duration: float) -> dict[str, Any]:
    """Latency/throughput/robustness summary of one run.

    Percentiles are over *completed* (ok/degraded) requests — shed
    requests resolve in microseconds and would otherwise report a
    meaninglessly low p50; ``max`` spans every resolution so watchdog
    overruns stay visible."""
    latencies = sorted(r.latency for r in results if r.succeeded)
    all_latencies = [r.latency for r in results]
    by_status: dict[str, int] = {}
    for result in results:
        by_status[result.status] = by_status.get(result.status, 0) + 1
    completed = by_status.get("ok", 0) + by_status.get("degraded", 0)
    return {
        "requests": len(results),
        "duration_s": round(duration, 6),
        "throughput_rps": round(len(results) / duration, 2) if duration else 0.0,
        "goodput_rps": round(completed / duration, 2) if duration else 0.0,
        "latency_s": {
            "p50": round(_percentile(latencies, 0.50), 6),
            "p95": round(_percentile(latencies, 0.95), 6),
            "p99": round(_percentile(latencies, 0.99), 6),
            "max": round(max(all_latencies), 6) if all_latencies else 0.0,
        },
        "by_status": by_status,
        "retried": sum(r.retries for r in results),
        "degraded": by_status.get("degraded", 0),
        "shed": by_status.get("rejected", 0),
        "timed_out": by_status.get("timeout", 0),
    }


def run_bench(requests: int = 100_000, seed: int = 0, workers: int = 24,
              rate: float = 3000.0, mode: str = "open",
              time_scale: float = 1.0) -> dict[str, Any]:
    """The committed-artifact benchmark: one bursty trace, full stats,
    schema-1 envelope."""
    trace_config = TraceConfig(requests=requests, seed=seed, rate=rate,
                               tenants=8)
    # Queue sized so a full backlog drains well inside the middle
    # deadline class; bursts beyond that are shed at the door.
    config = ServeConfig(workers=workers,
                         queue_limit=max(512, int(rate * 0.12)),
                         tenant_rate=rate, tenant_burst=rate / 4, seed=seed)
    executor = SimulatedExecutor(seed=seed, time_scale=time_scale)
    items = generate_trace(trace_config)

    engine_box: list[ServeEngine] = []

    async def drive() -> tuple[list[ServeResult], float]:
        engine = ServeEngine(executor, config)
        engine_box.append(engine)
        loop = asyncio.get_running_loop()
        start = loop.time()
        if mode == "closed":
            results = await run_closed_loop(engine, items)
        else:
            results = await run_trace(engine, items, paced=True)
        return results, loop.time() - start

    results, duration = asyncio.run(drive())
    out = host_envelope("serve")
    out["config"] = {
        "requests": requests, "seed": seed, "workers": workers,
        "rate_rps": rate, "mode": mode, "tenants": trace_config.tenants,
        "burst_factor": trace_config.burst_factor,
        "timeouts_s": list(trace_config.timeouts),
        "executor": "simulated", "time_scale": time_scale,
    }
    out["results"] = summarize(results, duration)
    out["engine"] = engine_box[0].stats()
    return out
