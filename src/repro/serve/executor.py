"""Executors: the backends the serving engine dispatches requests to.

Two implementations of one small duck-typed contract::

    async def run(request, level, straggle=1.0) -> value
    def verify(request, value) -> bool       # integrity verdict
    def corrupt(value) -> value              # chaos helper: a detectably
                                             # wrong value of the same type
    def health() -> float                    # capacity fraction in [0, 1]

* :class:`CkksOpExecutor` performs **real** ciphertext operations
  (keyswitch, hmult, hrot, rescale) on toy CKKS parameters through the
  repo's kernel-backend stack, with the degradation ladder mapped onto
  backend modes exactly as :class:`~repro.fhe.backend.IntegrityBackend`
  defines it: level 0 = the configured backend, level 1 = clamped
  numpy, level 2 = per-row golden.  Verification decrypts and compares
  against a precomputed golden plaintext, so a corrupted result can
  never pass.
* :class:`SimulatedExecutor` replaces compute with seeded service-time
  sleeps and fingerprint values — the open-loop benchmark uses it to
  push 100k+ requests through the *scheduling* machinery in seconds
  while keeping verification meaningful (a corrupted fingerprint fails
  the check).

Ops are synchronous numpy work executed inline on the event loop: at
toy sizes each op is far below the attempt timeout, and inline
execution keeps results bit-deterministic (no cross-thread backend
mutation).  The engine's deadline wrapper still bounds the *awaitable*
around them, which is what chaos drops and stragglers stress.
"""

from __future__ import annotations

import asyncio
import zlib

import numpy as np

from repro.fhe.backend import NumpyBackend, use_backend
from repro.fhe.ckks import Ciphertext, CkksContext
from repro.fhe.params import CkksParams, toy_params
from repro.obs import current_obs_hook
from repro.serve.requests import OPS, ServeRequest

__all__ = ["CkksOpExecutor", "SimulatedExecutor"]

#: Service-time multiplier per degradation-ladder level — degraded
#: paths are safer but slower (the golden path is per-row scalar code).
LEVEL_SLOWDOWN = (1.0, 1.4, 2.5)


class CkksOpExecutor:
    """Real CKKS ops on toy parameters through the backend stack."""

    def __init__(self, params: CkksParams | None = None, seed: int = 7,
                 pool=None):
        self.params = toy_params() if params is None else params
        self.pool = pool
        self.ctx = CkksContext(self.params, seed=2025)
        self.ctx.generate_galois_keys([1])
        rng = np.random.default_rng(seed)
        slots = self.params.slots
        self._ct_a = self.ctx.encrypt(rng.normal(0.0, 1.0, slots))
        self._ct_b = self.ctx.encrypt(rng.normal(0.0, 1.0, slots))
        # An unrelinearized 3-part product: the keyswitch op folds its
        # s^2 component back, exercising apply_keyswitch in isolation.
        a, b = self.ctx._check_levels(self._ct_a, self._ct_b)
        self._ct3 = Ciphertext(
            [a.parts[0] * b.parts[0],
             a.parts[0] * b.parts[1] + a.parts[1] * b.parts[0],
             a.parts[1] * b.parts[1]],
            a.scale * b.scale)
        self._ct_prod = self.ctx.multiply(self._ct_a, self._ct_b,
                                          rescale_after=False)
        self._clamped = NumpyBackend(mode="clamped")
        self._golden_backend = NumpyBackend(mode="golden")
        #: Golden decryptions, one per op, computed on the default path.
        self.golden = {op: self._apply(op) for op in OPS}

    def _apply(self, op: str) -> np.ndarray:
        if op == "hmult":
            out = self.ctx.multiply(self._ct_a, self._ct_b,
                                    rescale_after=False)
        elif op == "rescale":
            out = self.ctx.rescale(self._ct_prod)
        elif op == "hrot":
            out = self.ctx.rotate(self._ct_a, 1)
        elif op == "keyswitch":
            out = self.ctx.relinearize(self._ct3)
        else:  # pragma: no cover - ServeRequest validates the op
            raise ValueError(f"unknown op {op!r}")
        return self.ctx.decrypt(out)

    async def run(self, request: ServeRequest, level: int,
                  straggle: float = 1.0) -> np.ndarray:
        """Perform the op; a straggler factor repeats the work, the way
        a slow limb replays on the redundant unit."""
        repeats = max(1, int(round(straggle)))
        ladder = (None, self._clamped, self._golden_backend)
        value = None
        for _ in range(repeats):
            if level == 0:
                value = self._apply(request.op)
            else:
                with use_backend(ladder[min(level, 2)]):
                    value = self._apply(request.op)
            await asyncio.sleep(0)  # yield between repeats
        assert value is not None
        return value

    def verify(self, request: ServeRequest, value: np.ndarray) -> bool:
        """Decrypted result must match the precomputed golden plaintext
        (all ladder levels compute the identical integer result)."""
        golden = self.golden[request.op]
        return bool(np.allclose(value, golden, rtol=0.0, atol=1e-6))

    def corrupt(self, value: np.ndarray) -> np.ndarray:
        return value + 1000.0

    def health(self) -> float:
        if self.pool is None:
            return 1.0
        return len(self.pool.healthy_units) / self.pool.num_vpus


class SimulatedExecutor:
    """Seeded service-time model for scheduler-scale benchmarks.

    The value of a request is a CRC fingerprint of its identity, so the
    engine's verify step is real (a chaos-corrupted fingerprint fails)
    while compute is a single ``asyncio.sleep``.  Service times are a
    pure function of ``(seed, request_id)`` — replays are identical.
    """

    #: Mean service seconds per op (toy-parameter-ish ratios).
    SERVICE_MEAN = {"keyswitch": 0.0008, "hmult": 0.0010,
                    "hrot": 0.0009, "rescale": 0.0004}

    def __init__(self, seed: int = 0, time_scale: float = 1.0, pool=None):
        self.seed = seed
        self.time_scale = time_scale
        self.pool = pool

    def service_time(self, request: ServeRequest, level: int) -> float:
        rng = np.random.default_rng((self.seed, request.request_id,
                                     request.payload))
        base = self.SERVICE_MEAN[request.op]
        jitter = float(rng.lognormal(mean=0.0, sigma=0.35))
        return (base * jitter * LEVEL_SLOWDOWN[min(level, 2)]
                * self.time_scale)

    @staticmethod
    def fingerprint(request: ServeRequest) -> int:
        return zlib.crc32(f"{request.request_id}:{request.op}:"
                          f"{request.payload}".encode())

    def model_cycles(self, request: ServeRequest, level: int) -> int:
        """Deterministic modeled cycle cost of one dispatch — a pure
        function of (request identity, level), so per-trace cycle sums
        are exactly reproducible and reconcile against the
        ``serve.model_cycles`` counter."""
        base = int(self.SERVICE_MEAN[request.op] * 1e7)
        return (int(base * LEVEL_SLOWDOWN[min(level, 2)])
                + self.fingerprint(request) % 1000)

    async def run(self, request: ServeRequest, level: int,
                  straggle: float = 1.0) -> int:
        await asyncio.sleep(self.service_time(request, level) * straggle)
        obs = current_obs_hook()
        if obs is not None:
            # Charge the modeled cycles to the innermost open span (the
            # engine's serve.attempt, stamped with the request's trace)
            # and mirror them into the registry: per-trace sums from
            # the tracer must reconcile with this counter exactly.
            cycles = self.model_cycles(request, level)
            obs.add_cycles(cycles)
            obs.count("serve.model_cycles", cycles)
        return self.fingerprint(request)

    def verify(self, request: ServeRequest, value: int) -> bool:
        return value == self.fingerprint(request)

    def corrupt(self, value: int) -> int:
        return value ^ 0xDEAD_BEEF

    def health(self) -> float:
        if self.pool is None:
            return 1.0
        return len(self.pool.healthy_units) / self.pool.num_vpus
