"""Typed failure vocabulary of the serving layer.

Every way a request can fail to produce a level-0 result has a named
exception class, because the robustness contract the chaos campaign
enforces is *typed resolution*: a request may be retried, degraded,
rejected, or timed out — but never hung, and never failed with an
anonymous error.  :class:`ServeError` subclasses never escape
:meth:`repro.serve.engine.ServeEngine.submit`; they are folded into the
returned :class:`~repro.serve.requests.ServeResult` with the exception
class name as the ``error`` field.

:class:`~repro.accel.parallel.PoolExhaustedError` (every VPU retired)
is re-exported here so serve callers import one module for the whole
failure vocabulary.
"""

from __future__ import annotations

from repro.accel.parallel import PoolExhaustedError

__all__ = [
    "CircuitOpenError",
    "DeadlineExceeded",
    "EngineClosedError",
    "PoolExhaustedError",
    "RejectedError",
    "RetryBudgetExhausted",
    "ServeError",
]


class ServeError(Exception):
    """Base class for every typed serving-layer failure."""


class DeadlineExceeded(ServeError):
    """The request (or one attempt of it) outlived its deadline.

    Raised by :func:`repro.serve.deadline.with_deadline` when the
    wrapped awaitable is cancelled at the deadline — the only sanctioned
    way backend work times out (lint rule FHC011)."""


class RejectedError(ServeError):
    """Admission control refused the request before any work ran.

    ``reason`` is one of ``"rate_limited"`` / ``"overloaded"`` and
    ``retry_after`` is the server's hint (seconds) for when capacity is
    expected back.
    """

    def __init__(self, reason: str, retry_after: float):
        super().__init__(f"rejected ({reason}); retry after "
                         f"{retry_after * 1e3:.1f} ms")
        self.reason = reason
        self.retry_after = retry_after


class RetryBudgetExhausted(ServeError):
    """The tenant's retry budget is spent; the attempt will not be
    replayed (the ladder may still degrade it)."""


class CircuitOpenError(ServeError):
    """The circuit breaker guarding a backend level is open and the
    request was not selected as a recovery probe."""


class EngineClosedError(ServeError):
    """The engine is draining or closed; no new work is accepted."""
