"""Rate limiting, retry budgets, and deterministic backoff.

Three small, clock-injected primitives:

* :class:`TokenBucket` — the per-tenant admission limiter.  Refill is
  continuous (``rate`` tokens/second up to ``burst``); a failed acquire
  yields a ``retry_after`` hint so rejections are actionable rather
  than bare errors.
* :class:`RetryBudget` — a token bucket in retry units: each completed
  request earns back a fraction (``ratio``) of a retry, so under
  sustained failure a tenant's replays are bounded to ``ratio`` of its
  traffic instead of amplifying the overload (the classic retry-storm
  guard).
* :class:`RetryPolicy` — exponential backoff with **deterministic**
  jitter: the delay is a pure function of ``(seed, request_id,
  attempt)``, so chaos campaigns replay bit-identically while distinct
  requests still decorrelate.
"""

from __future__ import annotations

import random
import time
from typing import Callable

__all__ = ["RetryBudget", "RetryPolicy", "TokenBucket"]


class TokenBucket:
    """Continuous-refill token bucket on an injectable monotonic clock."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self._updated = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        self._refill()
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will have accumulated (0 if they
        are already there) — the hint a rejection carries."""
        self._refill()
        deficit = n - self.tokens
        return max(0.0, deficit / self.rate)


class RetryBudget:
    """Per-tenant retry allowance proportional to completed traffic.

    Starts with ``initial`` retries banked; every completed request
    deposits ``ratio`` of a retry (capped at ``cap``).  ``try_spend``
    withdraws one retry if the balance allows.  With ``ratio = 0.1`` a
    tenant's steady-state replay traffic is at most 10% of its
    completions — failures shed load instead of multiplying it.
    """

    def __init__(self, ratio: float = 0.1, initial: float = 3.0,
                 cap: float = 10.0):
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"ratio must be in [0, 1], got {ratio}")
        self.ratio = ratio
        self.cap = cap
        self.balance = min(float(initial), cap)

    def deposit(self) -> None:
        """Credit one completed request."""
        self.balance = min(self.cap, self.balance + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one retry; False means the budget is exhausted."""
        if self.balance >= 1.0:
            self.balance -= 1.0
            return True
        return False


class RetryPolicy:
    """Exponential backoff with deterministic decorrelated jitter.

    ``delay(request_id, attempt)`` is ``base * multiplier**(attempt-1)``
    capped at ``max_delay``, scaled by a jitter factor in ``[0.5, 1.5)``
    drawn from a PRNG seeded with ``(seed, request_id, attempt)`` — no
    hidden randomness, so a replayed campaign backs off identically.
    """

    def __init__(self, base: float = 0.002, multiplier: float = 2.0,
                 max_delay: float = 0.05, seed: int = 0):
        self.base = base
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.seed = seed

    def delay(self, request_id: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.max_delay,
                  self.base * self.multiplier ** max(0, attempt - 1))
        rng = random.Random(f"{self.seed}:{request_id}:{attempt}")
        return raw * (0.5 + rng.random())
