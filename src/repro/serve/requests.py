"""Request/result records of the serving layer.

A :class:`ServeRequest` names a tenant, one ciphertext op, and carries
its :class:`~repro.serve.deadline.Deadline`.  A :class:`ServeResult` is
the *only* thing :meth:`~repro.serve.engine.ServeEngine.submit` ever
returns — failures are statuses, not exceptions, so callers (and the
chaos campaign's invariant checks) can account for every submitted
request:

========== =================================================================
status     meaning
========== =================================================================
ok         served at ladder level 0, verification clean
degraded   served correctly but at ladder level > 0 (clamped/golden path)
rejected   admission control refused it; ``retry_after`` carries the hint
timeout    the deadline (or the watchdog grace) expired before completion
error      a typed failure — ``error`` holds the exception class name
========== =================================================================

``ok``/``degraded`` results carry a value; the other three never do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.serve.deadline import Deadline

__all__ = [
    "OPS",
    "RESOLVED_STATUSES",
    "STATUS_DEGRADED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "ServeRequest",
    "ServeResult",
]

#: The ciphertext operations the serving layer accepts.
OPS = ("keyswitch", "hmult", "hrot", "rescale")

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_REJECTED = "rejected"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"

#: Every status a result may resolve to — the chaos campaign asserts
#: each submitted request lands in exactly one of these.
RESOLVED_STATUSES = frozenset({
    STATUS_OK, STATUS_DEGRADED, STATUS_REJECTED, STATUS_TIMEOUT,
    STATUS_ERROR,
})


@dataclass
class ServeRequest:
    """One tenant-issued ciphertext operation."""

    request_id: int
    tenant: str
    op: str
    deadline: Deadline
    #: Seed material for synthetic payloads (the simulated executor
    #: derives its service time from it; the CKKS executor ignores it).
    payload: int = 0

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {OPS}")


@dataclass
class ServeResult:
    """The resolution of one request — always returned, never raised."""

    request_id: int
    tenant: str
    op: str
    status: str
    level: int = 0
    attempts: int = 0
    retries: int = 0
    value: Any = None
    #: Exception class name for timeout/error statuses, admission
    #: reason for rejections, None on success.
    error: str | None = None
    #: Server hint (seconds) accompanying a rejection.
    retry_after: float | None = None
    #: Wall-clock phase attribution in nanoseconds:
    #: queue / dispatch / compute / verify.
    phases: dict[str, int] = field(default_factory=dict)
    #: End-to-end latency (submit to resolution), seconds.
    latency: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.status in (STATUS_OK, STATUS_DEGRADED)
