"""Synthetic multi-tenant workload traces (open- and closed-loop).

The generator is seeded and purely functional: a
:class:`TraceConfig` maps to one immutable arrival list, so benchmarks
and chaos campaigns replay the same offered load every run.

Open-loop traces model bursty arrivals the way serving papers do:
a base Poisson process whose rate is multiplied by ``burst_factor``
during burst episodes (episode starts are themselves a Poisson process,
durations exponential).  Closed-loop traces instead fix a client count
and think time — the driver in :mod:`repro.serve.bench` interprets the
same items either way.

Each item carries a relative arrival offset, tenant, op, timeout class,
and payload seed; :func:`materialize` turns one into a live
:class:`~repro.serve.requests.ServeRequest` (deadlines are absolute, so
they must be minted at submit time, not generation time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.serve.deadline import Deadline
from repro.serve.requests import OPS, ServeRequest

__all__ = ["TraceConfig", "TraceItem", "generate_trace", "materialize"]


@dataclass(frozen=True)
class TraceItem:
    """One planned arrival (relative to trace start)."""

    request_id: int
    offset: float
    tenant: str
    op: str
    timeout: float
    payload: int


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic workload."""

    requests: int = 1000
    tenants: int = 4
    seed: int = 0
    #: Base arrival rate (requests/second) of the open-loop process.
    rate: float = 4000.0
    #: Rate multiplier while a burst episode is active.
    burst_factor: float = 6.0
    #: Fraction of wall time spent inside burst episodes.
    burst_fraction: float = 0.15
    #: Mean burst episode length in seconds.
    burst_length: float = 0.05
    #: Deadline classes (seconds) and their weights.
    timeouts: tuple[float, ...] = (0.08, 0.25, 1.0)
    timeout_weights: tuple[float, ...] = (0.2, 0.6, 0.2)
    #: Op mix weights aligned with repro.serve.requests.OPS.
    op_weights: tuple[float, ...] = (0.3, 0.3, 0.25, 0.15)
    #: Zipf-ish tenant skew exponent (0 = uniform).
    tenant_skew: float = 0.8


def _tenant_weights(config: TraceConfig) -> np.ndarray:
    ranks = np.arange(1, config.tenants + 1, dtype=float)
    weights = ranks ** -config.tenant_skew
    return weights / weights.sum()


def generate_trace(config: TraceConfig) -> list[TraceItem]:
    """The full arrival list, sorted by offset."""
    rng = np.random.default_rng(config.seed)
    ops = np.array(OPS)
    op_w = np.array(config.op_weights, dtype=float)
    op_w /= op_w.sum()
    t_w = np.array(config.timeout_weights, dtype=float)
    t_w /= t_w.sum()
    tenant_w = _tenant_weights(config)

    items: list[TraceItem] = []
    now = 0.0
    burst_until = 0.0
    # Mean gap between burst starts so the stationary burst fraction
    # matches the config: starts ~ Poisson(burst_length/burst_fraction).
    burst_gap = config.burst_length / max(config.burst_fraction, 1e-6)
    next_burst = float(rng.exponential(burst_gap))
    for request_id in range(config.requests):
        rate = config.rate
        if now < burst_until:
            rate *= config.burst_factor
        elif now >= next_burst:
            burst_until = now + float(rng.exponential(config.burst_length))
            next_burst = burst_until + float(rng.exponential(burst_gap))
            rate *= config.burst_factor
        now += float(rng.exponential(1.0 / rate))
        items.append(TraceItem(
            request_id=request_id,
            offset=now,
            tenant=f"tenant-{rng.choice(config.tenants, p=tenant_w)}",
            op=str(rng.choice(ops, p=op_w)),
            timeout=float(rng.choice(np.array(config.timeouts), p=t_w)),
            payload=int(rng.integers(0, 2**31)),
        ))
    return items


def materialize(item: TraceItem,
                clock: Callable[[], float] = time.monotonic) -> ServeRequest:
    """Mint the live request for one trace item (deadline starts now)."""
    return ServeRequest(
        request_id=item.request_id,
        tenant=item.tenant,
        op=item.op,
        deadline=Deadline.after(item.timeout, clock),
        payload=item.payload,
    )
