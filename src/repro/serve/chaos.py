"""Serve-level chaos: deterministic failure injection above the kernel.

:mod:`repro.fault` injects *bit-level* faults inside the datapath; this
module extends the same deterministic-injection discipline to the
failure modes only a serving layer sees:

=================== =======================================================
site                what it does to a request
=================== =======================================================
``serve_delay``     delayed dispatch: extra latency before the attempt
``serve_drop``      dropped completion: the attempt's awaitable never
                    resolves (only the deadline wrapper can reclaim it)
``serve_straggler`` slow-limb straggler: compute takes ``magnitude``
                    times longer
``serve_integrity`` the result is corrupted before verification for the
                    first ``magnitude`` attempts (1 = transient, large =
                    persistent, forcing the degradation ladder)
=================== =======================================================

Every injection is a pure function of ``(seed, request_id)`` — a
campaign replays bit-identically, mirroring
:class:`repro.fault.injector.FaultSpec` determinism.  The campaign
driver (:func:`run_chaos_campaign`) fires a bursty trace through a real
engine and asserts the robustness contract: **zero hung requests, zero
silent corruptions, every affected request resolved with a typed
status**, and a bounded p99 (nothing outlives deadline + watchdog
grace).  Outcome classification reuses the fault layer's vocabulary
(masked / corrected / detected / silent) extended with the serve-only
resolutions (degraded / timeout / rejected / error).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.obs import check_span_tree, current_obs_hook, per_trace_cycles

__all__ = [
    "ChaosInjector",
    "ChaosPlan",
    "ChaosSpec",
    "SERVE_SITES",
    "SITE_DELAY",
    "SITE_DROP",
    "SITE_INTEGRITY",
    "SITE_STRAGGLER",
    "default_chaos_specs",
]

SITE_DELAY = "serve_delay"
SITE_DROP = "serve_drop"
SITE_STRAGGLER = "serve_straggler"
SITE_INTEGRITY = "serve_integrity"
SERVE_SITES = (SITE_DELAY, SITE_DROP, SITE_STRAGGLER, SITE_INTEGRITY)


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos source: a site, a per-request firing probability, and
    a site-specific magnitude (seconds of delay, dropped attempts,
    straggle factor, or corrupted attempts)."""

    site: str
    rate: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in SERVE_SITES:
            raise ValueError(f"unknown chaos site {self.site!r}; "
                             f"expected one of {SERVE_SITES}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")


@dataclass
class ChaosPlan:
    """The realized injections for one request (all sites resolved)."""

    delay: float = 0.0
    drop_attempts: int = 0
    straggle: float = 1.0
    corrupt_attempts: int = 0
    sites: tuple[str, ...] = ()

    @property
    def affected(self) -> bool:
        return bool(self.sites)


def default_chaos_specs(intensity: float = 1.0) -> tuple[ChaosSpec, ...]:
    """The standard campaign mix: common transients plus a rare
    persistent corruption that forces the degradation ladder."""
    scale = min(1.0, intensity)
    return (
        ChaosSpec(SITE_DELAY, rate=0.10 * scale, magnitude=0.02),
        ChaosSpec(SITE_DROP, rate=0.05 * scale, magnitude=1),
        ChaosSpec(SITE_STRAGGLER, rate=0.08 * scale, magnitude=4.0),
        ChaosSpec(SITE_INTEGRITY, rate=0.10 * scale, magnitude=1),
        ChaosSpec(SITE_INTEGRITY, rate=0.03 * scale, magnitude=99),
    )


class ChaosInjector:
    """Deterministic per-request chaos planner.

    The engine asks :meth:`plan_for` exactly once per request; the plan
    is derived from ``(seed, request_id)`` alone, so injection records
    and replays agree by construction.
    """

    def __init__(self, specs: tuple[ChaosSpec, ...] = (), seed: int = 0):
        self.specs = tuple(specs)
        self.seed = seed
        self.injections = 0
        self.by_site: dict[str, int] = {site: 0 for site in SERVE_SITES}
        self.affected_ids: set[int] = set()
        self._plans: dict[int, ChaosPlan] = {}

    def plan_for(self, request_id: int) -> ChaosPlan:
        plan = self._plans.get(request_id)
        if plan is not None:
            return plan
        rng = random.Random(f"{self.seed}:{request_id}")
        delay = 0.0
        drop = 0
        straggle = 1.0
        corrupt = 0
        sites: list[str] = []
        for spec in self.specs:
            if rng.random() >= spec.rate:
                continue
            sites.append(spec.site)
            if spec.site == SITE_DELAY:
                delay += spec.magnitude * (0.5 + rng.random())
            elif spec.site == SITE_DROP:
                drop = max(drop, int(spec.magnitude))
            elif spec.site == SITE_STRAGGLER:
                straggle = max(straggle, spec.magnitude)
            elif spec.site == SITE_INTEGRITY:
                corrupt = max(corrupt, int(spec.magnitude))
        plan = ChaosPlan(delay, drop, straggle, corrupt, tuple(sites))
        self._plans[request_id] = plan
        if plan.affected:
            self.injections += len(sites)
            self.affected_ids.add(request_id)
            for site in sites:
                self.by_site[site] += 1
            obs = current_obs_hook()
            if obs is not None:
                obs.count("serve.chaos.injections", len(sites))
        return plan


@dataclass
class CampaignOutcome:
    """Aggregate verdict of one chaos campaign run."""

    submitted: int = 0
    resolved: int = 0
    injections: int = 0
    affected: int = 0
    hung: int = 0
    silent: int = 0
    untyped: int = 0
    p99_latency: float = 0.0
    outcomes: dict[str, int] = field(default_factory=dict)
    by_site: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations


def _classify(result, affected: bool) -> str:
    """Fault-vocabulary outcome for one resolved request."""
    from repro.serve.requests import (
        STATUS_DEGRADED,
        STATUS_OK,
        STATUS_REJECTED,
        STATUS_TIMEOUT,
    )

    if result.status == STATUS_OK:
        if not affected:
            return "clean"
        return "corrected" if result.retries else "masked"
    if result.status == STATUS_DEGRADED:
        return "degraded"
    if result.status == STATUS_TIMEOUT:
        return "timeout"
    if result.status == STATUS_REJECTED:
        return "rejected"
    return "errored"


def run_chaos_campaign(requests: int = 900, seed: int = 0,
                       executor: str = "sim", min_injections: int = 200,
                       intensity: float = 1.0) -> CampaignOutcome:
    """Fire a bursty trace through a chaos-wrapped engine and check the
    robustness contract.

    Violations collected (an empty list is a pass):

    * any submitted request left unresolved (hung);
    * any ``ok``/``degraded`` result whose value fails an independent
      re-verification (silent corruption);
    * any resolution outside the typed status set, or a failure status
      with no typed ``error``;
    * p99 latency beyond ``deadline + watchdog grace`` (unbounded tail);
    * fewer realized injections than ``min_injections``;
    * with an observer installed: any span-tree malformation (orphan
      stitches, cross-trace nesting, missing/duplicate roots) and any
      mismatch between per-trace cycle sums and the registry's
      ``serve.model_cycles`` counter.
    """
    import asyncio

    from repro.serve.bench import run_trace
    from repro.serve.engine import ServeConfig, ServeEngine
    from repro.serve.executor import CkksOpExecutor, SimulatedExecutor
    from repro.serve.requests import (
        RESOLVED_STATUSES,
        STATUS_ERROR,
        STATUS_TIMEOUT,
    )
    from repro.serve.trace import TraceConfig, generate_trace

    if executor == "sim":
        exec_impl: object = SimulatedExecutor(seed=seed)
    elif executor == "ckks":
        exec_impl = CkksOpExecutor(seed=seed)
    else:
        raise ValueError(f"unknown executor {executor!r}")
    injector = ChaosInjector(default_chaos_specs(intensity), seed=seed)
    config = ServeConfig(seed=seed)
    # Keep the offered load below the shed point: chaos plans are
    # minted at enqueue, so a request rejected at admission never
    # realizes its injections.  Bursts (6x the base rate) still push
    # the engine through the overload path.
    trace_config = TraceConfig(
        requests=requests, seed=seed,
        rate=1200.0 if executor == "sim" else 400.0)
    items = generate_trace(trace_config)
    engine = ServeEngine(exec_impl, config, chaos=injector)
    results = asyncio.run(run_trace(engine, items, paced=True))

    outcome = CampaignOutcome(
        submitted=len(items), resolved=len(results),
        injections=injector.injections,
        affected=len(injector.affected_ids),
        by_site=dict(injector.by_site))
    if outcome.resolved != outcome.submitted:
        outcome.hung = outcome.submitted - outcome.resolved
        outcome.violations.append(
            f"{outcome.hung} requests never resolved (hung)")
    latencies = sorted(r.latency for r in results)
    if latencies:
        outcome.p99_latency = latencies[
            min(len(latencies) - 1, int(0.99 * len(latencies)))]
    bound = max(trace_config.timeouts) + config.watchdog_grace + 0.1
    if outcome.p99_latency > bound:
        outcome.violations.append(
            f"p99 latency {outcome.p99_latency:.3f}s exceeds the "
            f"deadline+grace bound {bound:.3f}s")
    by_item = {item.request_id: item for item in items}
    for result in results:
        affected = result.request_id in injector.affected_ids
        kind = _classify(result, affected)
        outcome.outcomes[kind] = outcome.outcomes.get(kind, 0) + 1
        if result.status not in RESOLVED_STATUSES:
            outcome.untyped += 1
            outcome.violations.append(
                f"request {result.request_id} resolved with unknown "
                f"status {result.status!r}")
            continue
        if (result.status in (STATUS_TIMEOUT, STATUS_ERROR)
                and not result.error):
            outcome.untyped += 1
            outcome.violations.append(
                f"request {result.request_id} failed without a typed "
                f"error")
        if result.succeeded:
            request = by_item[result.request_id]
            from repro.serve.trace import materialize

            probe = materialize(request)
            if not exec_impl.verify(probe, result.value):  # type: ignore[attr-defined]
                outcome.silent += 1
                outcome.violations.append(
                    f"request {result.request_id} returned a corrupted "
                    f"value with status {result.status!r} (silent)")
    if outcome.injections < min_injections:
        outcome.violations.append(
            f"only {outcome.injections} injections realized; campaign "
            f"requires >= {min_injections}")
    obs = current_obs_hook()
    if obs is not None:
        # Trace well-formedness is part of the chaos contract: after
        # the engine quiesces no span may be left open, every request's
        # spans must form one stitched tree under its root, and cycles
        # summed per trace must reconcile with the registry's counter
        # (retries, degrades, and watchdog races included).
        dangling = obs.tracer.unwind()
        if dangling:
            outcome.violations.append(
                f"{dangling} spans left open after the campaign quiesced")
        for problem in check_span_tree(obs.tracer):
            outcome.violations.append(f"span-tree: {problem}")
        traced = sum(cycles for trace_id, cycles
                     in per_trace_cycles(obs.tracer).items() if trace_id)
        counted = int(obs.metrics.counters.get("serve.model_cycles", 0))
        if traced != counted:
            outcome.violations.append(
                f"per-trace cycle sum {traced} != serve.model_cycles "
                f"counter {counted} (attribution leak)")
        obs.gauge("serve.chaos.p99_latency", round(outcome.p99_latency, 6))
        obs.count("serve.chaos.campaign_violations",
                  len(outcome.violations))
    return outcome
