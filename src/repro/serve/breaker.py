"""Per-backend circuit breaker driven by integrity verdicts.

The serving engine keeps one breaker per degradation-ladder level it
can dispatch to.  Repeated ABFT/verification failures against a level
trip its breaker *open*, which routes subsequent traffic one rung down
the ladder immediately — requests stop burning their deadline budget on
a backend that is demonstrably corrupting results.  After
``reset_timeout`` the breaker goes *half-open* and admits a bounded
number of recovery probes; a probe success closes the breaker (the
backend healed — e.g. the quarantined compiled program was rebuilt), a
probe failure re-opens it with a fresh timer.

The state machine is clock-injected and lock-free: the engine runs on
one event loop, so transitions are naturally serialized.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CircuitBreaker", "STATE_CLOSED", "STATE_HALF_OPEN", "STATE_OPEN"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open recovery probes."""

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 0.5,
                 probe_limit: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probe_limit < 1:
            raise ValueError("probe_limit must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.probe_limit = probe_limit
        self.clock = clock
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        #: Lifetime count of closed->open transitions (an obs gauge feed).
        self.opened_total = 0

    @property
    def state(self) -> str:
        """Current state, advancing open->half_open when the reset
        timer has elapsed."""
        if (self._state == STATE_OPEN
                and self.clock() - self._opened_at >= self.reset_timeout):
            self._state = STATE_HALF_OPEN
            self._probes_inflight = 0
        return self._state

    def allow(self) -> bool:
        """May a request be dispatched against this backend now?

        Closed: always.  Open: never.  Half-open: only while fewer than
        ``probe_limit`` probes are outstanding — the caller *must*
        follow up with :meth:`record_success` or :meth:`record_failure`
        to release the probe slot.
        """
        state = self.state
        if state == STATE_CLOSED:
            return True
        if state == STATE_OPEN:
            return False
        if self._probes_inflight < self.probe_limit:
            self._probes_inflight += 1
            return True
        return False

    def record_success(self) -> None:
        """A dispatch against this backend verified clean."""
        if self.state == STATE_HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
        self._state = STATE_CLOSED
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """A dispatch failed its integrity check (or timed out)."""
        state = self.state
        if state == STATE_HALF_OPEN:
            # A failed probe re-opens immediately with a fresh timer.
            self._trip()
            return
        self._consecutive_failures += 1
        if (state == STATE_CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self.clock()
        self._consecutive_failures = 0
        self._probes_inflight = 0
        self.opened_total += 1
