"""``python -m repro.serve`` — benchmark, chaos campaign, validation.

Modes (mutually exclusive):

* ``--bench`` (default): run the open/closed-loop synthetic-trace
  benchmark and write ``BENCH_serve.json`` (schema-1 envelope).
* ``--chaos``: run the chaos campaign and exit nonzero on any
  robustness violation (hung request, silent corruption, untyped
  failure, unbounded p99, or too few injections).
* ``--validate-envelope PATH``: shape-check an existing artifact with
  :func:`repro.obs.export.validate_envelope` (the CI gate).

``REPRO_TRACE=1`` enables the obs hook for any mode, in which case a
metrics snapshot accompanies the run on stderr-free stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import current_obs_hook, enable_from_env
from repro.obs.export import validate_envelope


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="resilient FHE serving layer: bench and chaos drivers")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--bench", action="store_true",
                      help="run the synthetic-trace benchmark (default)")
    mode.add_argument("--chaos", action="store_true",
                      help="run the chaos campaign; nonzero exit on any "
                           "robustness violation")
    mode.add_argument("--validate-envelope", metavar="PATH",
                      help="validate an artifact's schema-1 envelope")
    parser.add_argument("--requests", type=int, default=None,
                        help="request count (default: 100000 bench, "
                             "600 chaos)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=24)
    parser.add_argument("--rate", type=float, default=3000.0,
                        help="open-loop base arrival rate (requests/s)")
    parser.add_argument("--mode", choices=("open", "closed"),
                        default="open", help="bench loop mode")
    parser.add_argument("--time-scale", type=float, default=1.0,
                        help="scale simulated service times (smoke runs "
                             "use < 1)")
    parser.add_argument("--executor", choices=("sim", "ckks"),
                        default="sim", help="chaos campaign executor")
    parser.add_argument("--min-injections", type=int, default=200)
    parser.add_argument("--intensity", type=float, default=1.0,
                        help="chaos rate multiplier in (0, 1]")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON artifact here "
                             "(default BENCH_serve.json for --bench)")
    return parser


def _emit_metrics() -> None:
    obs = current_obs_hook()
    if obs is not None:
        snapshot = obs.metrics.snapshot()
        print(json.dumps({"obs": snapshot}, indent=2, sort_keys=True),
              file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    enable_from_env()

    if args.validate_envelope:
        payload = json.loads(Path(args.validate_envelope).read_text())
        problems = validate_envelope(payload)
        if problems:
            for problem in problems:
                print(f"ENVELOPE: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate_envelope}: envelope ok "
              f"(bench={payload.get('bench')!r})")
        return 0

    if args.chaos:
        from repro.serve.chaos import run_chaos_campaign

        outcome = run_chaos_campaign(
            requests=args.requests if args.requests is not None else 900,
            seed=args.seed, executor=args.executor,
            min_injections=args.min_injections, intensity=args.intensity)
        report = {
            "submitted": outcome.submitted,
            "resolved": outcome.resolved,
            "injections": outcome.injections,
            "affected": outcome.affected,
            "hung": outcome.hung,
            "silent": outcome.silent,
            "untyped": outcome.untyped,
            "p99_latency_s": round(outcome.p99_latency, 6),
            "outcomes": outcome.outcomes,
            "by_site": outcome.by_site,
            "violations": outcome.violations,
            "passed": outcome.passed,
        }
        print(json.dumps(report, indent=2, sort_keys=True))
        if args.out is not None:
            args.out.write_text(json.dumps(report, indent=2, sort_keys=True)
                                + "\n")
        _emit_metrics()
        return 0 if outcome.passed else 1

    # Default: the benchmark.
    from repro.serve.bench import run_bench

    artifact = run_bench(
        requests=args.requests if args.requests is not None else 100_000,
        seed=args.seed, workers=args.workers, rate=args.rate,
        mode=args.mode, time_scale=args.time_scale)
    problems = validate_envelope(artifact)
    if problems:  # pragma: no cover - host_envelope is well-formed
        for problem in problems:
            print(f"ENVELOPE: {problem}", file=sys.stderr)
        return 1
    out_path = args.out if args.out is not None else Path("BENCH_serve.json")
    out_path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path} "
          f"(p50={artifact['results']['latency_s']['p50'] * 1e3:.2f} ms, "
          f"p99={artifact['results']['latency_s']['p99'] * 1e3:.2f} ms, "
          f"throughput={artifact['results']['throughput_rps']:.0f} rps)")
    _emit_metrics()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
