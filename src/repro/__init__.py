"""uvpu-fhe: a reproduction of "A Unified Vector Processing Unit for Fully
Homomorphic Encryption" (DATE 2025).

Subpackages
-----------
``repro.arith``
    Modular arithmetic (Barrett/Montgomery datapaths, NTT primes).
``repro.ntt``
    NTT algorithms: reference, Cooley–Tukey, Pease constant-geometry,
    negacyclic, multi-dimensional decomposition.
``repro.automorphism``
    Galois/automorphism index maps, the paper's shift decomposition, and
    shift-network control-signal generation.
``repro.core``
    The unified VPU: lanes, register files, the inter-lane network
    (CG + shift stages), the vector ISA and the cycle-counting executor.
``repro.mapping``
    Compilers from NTT/automorphism/transpose operations to VPU programs.
``repro.perf``
    Analytic cycle/utilization models (paper Table III).
``repro.hwmodel``
    7 nm area/power models of all datapath components (paper Tables II/IV).
``repro.baselines``
    The F1 / BTS / ARK / SHARP permutation units the paper compares with.
``repro.fhe``
    A full RNS-CKKS library exercising the VPU with real FHE workloads.
``repro.accel``
    Multi-VPU accelerator top level (NoC + on-chip SRAM + scheduler).
``repro.fault``
    Fault injection and the runtime ABFT integrity layer: deterministic
    bit-flip/stuck-at campaigns (``python -m repro.fault``), linear NTT
    checksums, spare-modulus keyswitch verification, graceful
    degradation.
``repro.analysis``
    Static bound/overflow verification and lint for the lazy-reduction
    kernels (``fhecheck``).
"""

__version__ = "0.1.0"
