"""Tests for the Pease constant-geometry NTT (the CG network's algorithm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ntt import (
    cg_dif_ntt,
    cg_dif_stage,
    cg_dit_intt,
    cg_dit_stage,
    dif_gather_permutation,
    dit_scatter_permutation,
    intt_dit,
    ntt_dif,
)
from repro.ntt.tables import get_tables

Q = 998244353


def rand_ints(n, seed):
    rng = np.random.default_rng(seed)
    return [int(v) for v in rng.integers(0, Q, size=n)]


class TestPermutations:
    @pytest.mark.parametrize("n", [2, 4, 8, 64])
    def test_gather_scatter_are_inverse(self, n):
        gather = dif_gather_permutation(n)
        scatter = dit_scatter_permutation(n)
        x = np.arange(n)
        np.testing.assert_array_equal(x[gather][scatter], x)
        np.testing.assert_array_equal(x[scatter][gather], x)

    def test_gather_pairs_strided_elements(self):
        n = 8
        g = dif_gather_permutation(n)
        # out[2j], out[2j+1] must come from j and j + n/2.
        for j in range(n // 2):
            assert g[2 * j] == j
            assert g[2 * j + 1] == j + n // 2

    def test_gather_is_perfect_shuffle_inverse(self):
        # The CG-DIF gather is the inverse perfect shuffle: position p's
        # source is ror(p) read as a bit rotation.
        n = 16
        g = dif_gather_permutation(n)
        bits = 4
        for p in range(n):
            expected_src = ((p >> 1) | ((p & 1) << (bits - 1)))
            assert g[p] == expected_src

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            dif_gather_permutation(6)
        with pytest.raises(ValueError):
            dit_scatter_permutation(1)


class TestConstantGeometry:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256])
    def test_cg_dif_matches_gs_dif(self, n):
        """CG-DIF must be element-for-element identical to iterative DIF."""
        t = get_tables(n, Q)
        x = rand_ints(n, seed=n)
        assert cg_dif_ntt(x, t) == ntt_dif(x, t)

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256])
    def test_cg_dit_matches_ct_dit(self, n):
        t = get_tables(n, Q)
        x = rand_ints(n, seed=n + 1)
        assert cg_dit_intt(x, t) == intt_dit(x, t)

    @pytest.mark.parametrize("n", [4, 16, 128])
    def test_cg_roundtrip(self, n):
        t = get_tables(n, Q)
        x = rand_ints(n, seed=n + 2)
        assert cg_dit_intt(cg_dif_ntt(x, t), t) == x

    def test_stagewise_geometry_is_constant(self):
        """Every CG stage must read pairs (j, j+n/2) and write (2j, 2j+1):
        feed a stage a delta and check where energy can appear."""
        n = 16
        t = get_tables(n, Q)
        for stage in range(t.log_n):
            for src in range(n):
                x = [0] * n
                x[src] = 1
                out = cg_dif_stage(x, stage, t)
                j = src % (n // 2)
                touched = {i for i, v in enumerate(out) if v != 0}
                assert touched <= {2 * j, 2 * j + 1}

    def test_dit_stage_geometry(self):
        n = 16
        t = get_tables(n, Q)
        for stage in range(t.log_n):
            for src in range(n):
                x = [0] * n
                x[src] = 1
                out = cg_dit_stage(x, stage, t)
                j = src // 2
                touched = {i for i, v in enumerate(out) if v != 0}
                assert touched <= {j, j + n // 2}

    def test_length_validation(self):
        t = get_tables(8, Q)
        with pytest.raises(ValueError):
            cg_dif_ntt([1, 2, 3], t)
        with pytest.raises(ValueError):
            cg_dit_intt([1] * 4, t)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=7), st.integers(min_value=0, max_value=2**32))
    def test_cg_equals_gs_property(self, log_n, seed):
        n = 1 << log_n
        t = get_tables(n, Q)
        x = rand_ints(n, seed=seed)
        assert cg_dif_ntt(x, t) == ntt_dif(x, t)
        assert cg_dit_intt(x, t) == intt_dit(x, t)
