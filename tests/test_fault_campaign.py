"""Campaign driver: coverage, classification, determinism, CLI."""

import json

import pytest

from repro.fault.campaign import (
    CampaignConfig,
    audit_determinism,
    keyswitch_config,
    run_campaign,
    smoke_config,
)
from repro.fault.cli import main
from repro.fault.injector import CORE_SITES, KINDS, current_fault_hook
from repro.fault.policy import IntegrityPolicy


class TestSmokeCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(smoke_config(injections=48))

    def test_no_silent_corruption_under_retry(self, report):
        assert report.outcome_counts().get("silent", 0) == 0

    def test_all_core_sites_and_kinds_covered(self, report):
        assert set(report.per_site()) == set(CORE_SITES)
        assert {e.spec.kind for e in report.events} == set(KINDS)

    def test_live_detection_rate(self, report):
        assert report.detection_rate_live >= 0.99

    def test_detection_latency_recorded(self, report):
        latencies = [e.detection_latency for e in report.events
                     if e.detection_latency is not None]
        assert latencies and all(lat >= 0 for lat in latencies)

    def test_hook_is_uninstalled_after_campaign(self, report):
        assert current_fault_hook() is None

    def test_report_serializes(self, report):
        data = json.loads(report.to_json())
        assert data["injections"] == 48
        assert data["policy"] == "detect-retry"
        assert len(data["events"]) == 48

    def test_report_carries_shared_artifact_envelope(self, report):
        data = json.loads(report.to_json())
        assert data["schema"] == 1
        assert data["bench"] == "faults"
        assert set(data["host"]) == {"machine", "python", "numpy"}


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        assert audit_determinism(smoke_config(injections=12))

    def test_different_seed_differs(self):
        a = run_campaign(smoke_config(injections=12, seed=1)).to_json()
        b = run_campaign(smoke_config(injections=12, seed=2)).to_json()
        assert a != b


class TestPolicies:
    def test_off_policy_never_detects(self):
        report = run_campaign(smoke_config(
            injections=16, policy=IntegrityPolicy.OFF))
        assert set(report.outcome_counts()) <= {"masked", "silent", "crash"}
        assert all(e.detection_latency is None for e in report.events)

    def test_detect_policy_counts_without_correcting(self):
        report = run_campaign(smoke_config(
            injections=16, policy=IntegrityPolicy.DETECT))
        assert report.outcome_counts().get("silent", 0) == 0
        assert sum(e.retries for e in report.events) == 0


class TestKeyswitchCampaign:
    def test_spare_channel_campaign_is_clean(self):
        report = run_campaign(keyswitch_config(injections=8))
        counts = report.outcome_counts()
        assert counts.get("silent", 0) == 0
        assert counts.get("corrected", 0) >= 1


class TestConfigValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(workload="toaster"))

    def test_unsupported_site_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(workload="keyswitch",
                                        sites=("regfile",)))

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(sites=()))


class TestCli:
    def test_smoke_run_writes_json(self, tmp_path, capsys):
        out = tmp_path / "faults.json"
        code = main(["--campaign", "smoke", "--injections", "16",
                     "--json", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["injections"] == 16
        assert data["outcomes"].get("silent", 0) == 0
        assert "fault campaign" in capsys.readouterr().out

    def test_audit_mode(self, capsys):
        assert main(["--campaign", "smoke", "--injections", "8",
                     "--audit"]) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_policy_override(self, capsys):
        assert main(["--campaign", "smoke", "--injections", "8",
                     "--policy", "off"]) == 0
        assert "policy=off" in capsys.readouterr().out
