"""Tests for the baseline permutation-unit behavioral models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automorphism import AffinePermutation, paper_sigma
from repro.baselines import (
    ArkPermuter,
    BenesNetwork,
    BtsPermuter,
    Crossbar,
    F1Permuter,
    SharpPermuter,
    affine_via_uniform_shifts,
    quadrant_swap_transpose,
)
from repro.baselines.f1 import apply_shift_schedule
from repro.ntt.constant_geometry import dif_gather_permutation


class TestBenes:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 128])
    def test_routes_random_permutations(self, n):
        net = BenesNetwork(n)
        rng = np.random.default_rng(n)
        x = np.arange(n)
        for _ in range(10):
            dest = rng.permutation(n)
            out = net.apply(x, dest)
            expected = np.empty(n, dtype=np.int64)
            expected[dest] = x
            np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_routes_all_automorphisms(self, n):
        net = BenesNetwork(n)
        x = np.arange(n)
        for k in range(1, n, 2):
            perm = AffinePermutation(n, k)
            np.testing.assert_array_equal(
                net.apply(x, perm.destinations()), perm.apply(x)
            )

    def test_stage_count(self):
        """Benes: 2*log2(n) - 1 columns — nearly double the paper's
        log2(m) shift stages, for generality automorphisms never need."""
        assert BenesNetwork(64).stage_count == 11
        assert BenesNetwork(2).stage_count == 1
        assert BenesNetwork(64).switch_count == 32 * 11

    def test_identity(self):
        net = BenesNetwork(16)
        x = np.arange(16)
        np.testing.assert_array_equal(net.apply(x, x), x)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            BenesNetwork(4).route(np.array([0, 0, 1, 2]))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            BenesNetwork(6)
        with pytest.raises(ValueError):
            BenesNetwork(4).apply(np.arange(3), np.arange(3))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31))
    def test_random_permutation_property(self, log_n, seed):
        n = 1 << log_n
        dest = np.random.default_rng(seed).permutation(n)
        out = BenesNetwork(n).apply(np.arange(n), dest)
        expected = np.empty(n, dtype=np.int64)
        expected[dest] = np.arange(n)
        np.testing.assert_array_equal(out, expected)


class TestCrossbar:
    def test_permute(self):
        xbar = Crossbar(8)
        dest = np.array([3, 1, 0, 2, 7, 6, 5, 4])
        out = xbar.permute(np.arange(8), dest)
        expected = np.empty(8, dtype=np.int64)
        expected[dest] = np.arange(8)
        np.testing.assert_array_equal(out, expected)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Crossbar(4).permute(np.arange(4), np.array([0, 0, 1, 2]))

    def test_wire_lanes(self):
        xbar = Crossbar(4)
        assert xbar.total_wire_lanes(np.arange(4)) == 0
        assert xbar.total_wire_lanes(np.array([3, 2, 1, 0])) == 8

    def test_crosspoints_scale_quadratically(self):
        assert Crossbar(64).crosspoint_count == 4096


class TestQuadrantTranspose:
    @pytest.mark.parametrize("n", [1, 2, 4, 16, 64])
    def test_matches_numpy_transpose(self, n):
        rng = np.random.default_rng(n)
        tile = rng.integers(0, 1000, size=(n, n))
        np.testing.assert_array_equal(quadrant_swap_transpose(tile), tile.T)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            quadrant_swap_transpose(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            quadrant_swap_transpose(np.zeros((3, 3)))


class TestF1ShiftSchedule:
    def test_schedule_realizes_permutation(self):
        for m in [8, 64]:
            x = np.arange(m)
            for k in range(1, m, 2):
                perm = AffinePermutation(m, k)
                schedule = affine_via_uniform_shifts(perm)
                out = apply_shift_schedule(x, schedule)
                np.testing.assert_array_equal(out, perm.apply(x))

    def test_pass_count_grows(self):
        """A uniform-shift-only network needs one pass per distinct
        distance; the unified network needs exactly one."""
        m = 64
        worst = max(len(affine_via_uniform_shifts(AffinePermutation(m, k)))
                    for k in range(1, m, 2))
        assert worst > 1  # F1 pays multiple passes
        assert worst <= m // 2 + 1

    def test_identity_is_single_pass(self):
        schedule = affine_via_uniform_shifts(AffinePermutation(16, 1, 0))
        assert len(schedule) == 1
        assert schedule[0][0] == 0


class TestPermuters:
    @pytest.mark.parametrize("cls", [F1Permuter, BtsPermuter, ArkPermuter, SharpPermuter])
    def test_automorphism_correct(self, cls):
        m = 64
        unit = cls(m)
        x = np.random.default_rng(5).integers(0, 1000, m)
        perm = paper_sigma(m, 3)
        np.testing.assert_array_equal(unit.automorphism(x, perm), perm.apply(x))
        assert unit.passes_executed >= 1

    def test_f1_counts_multiple_passes(self):
        unit = F1Permuter(64)
        unit.automorphism(np.arange(64), paper_sigma(64, 3))
        assert unit.passes_executed > 1

    def test_single_pass_designs(self):
        for cls in [BtsPermuter, ArkPermuter, SharpPermuter]:
            unit = cls(64)
            unit.automorphism(np.arange(64), paper_sigma(64, 3))
            assert unit.passes_executed == 1

    def test_transposes(self):
        tile = np.random.default_rng(9).integers(0, 100, (64, 64))
        assert np.array_equal(F1Permuter(64).transpose(tile), tile.T)
        assert np.array_equal(SharpPermuter(64).transpose(tile), tile.T)

    def test_ark_ntt_gather(self):
        m = 8
        unit = ArkPermuter(m)
        x = np.arange(m)
        np.testing.assert_array_equal(
            unit.ntt_gather(x), x[dif_gather_permutation(m)]
        )
        # DIT scatter inverts the DIF gather.
        np.testing.assert_array_equal(
            unit.ntt_gather(unit.ntt_gather(x), dit=True), x
        )

    def test_validation(self):
        for cls in [F1Permuter, ArkPermuter, SharpPermuter]:
            with pytest.raises(ValueError):
                cls(6)
