"""Unit tests for repro.arith.modular."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arith import modular

MODULI = [2, 3, 17, 257, 7681, 12289, (1 << 30) - 35, (1 << 31) - 1]


class TestScalarOps:
    @pytest.mark.parametrize("q", MODULI)
    def test_add_sub_roundtrip(self, q):
        for a in [0, 1, q - 1, q // 2]:
            for b in [0, 1, q - 1, q // 3]:
                s = modular.mod_add(a, b, q)
                assert modular.mod_sub(s, b, q) == a % q

    @pytest.mark.parametrize("q", MODULI)
    def test_neg(self, q):
        for a in [0, 1, q - 1]:
            assert modular.mod_add(a, modular.mod_neg(a, q), q) == 0

    def test_mul_matches_python(self):
        q = 12289
        for a in range(0, q, 997):
            for b in range(0, q, 991):
                assert modular.mod_mul(a, b, q) == (a * b) % q

    def test_exp_matches_pow(self):
        q = 7681
        for base in [0, 1, 2, 3, 7680]:
            for e in [0, 1, 2, 10, 7680]:
                assert modular.mod_exp(base, e, q) == pow(base, e, q)

    def test_exp_rejects_negative(self):
        with pytest.raises(ValueError):
            modular.mod_exp(2, -1, 17)

    def test_bad_modulus_rejected(self):
        for q in [1, 0, -5]:
            with pytest.raises(ValueError):
                modular.mod_add(1, 2, q)

    def test_inverse(self):
        q = 12289
        for a in [1, 2, 3, 12288, 6144]:
            inv = modular.mod_inverse(a, q)
            assert (a * inv) % q == 1

    def test_inverse_noninvertible(self):
        with pytest.raises(ValueError):
            modular.mod_inverse(6, 12)

    @given(st.integers(min_value=0, max_value=10**18),
           st.integers(min_value=0, max_value=10**18))
    def test_mul_property(self, a, b):
        q = 998244353
        assert modular.mod_mul(a, b, q) == (a * b) % q


class TestVectorOps:
    Q = 998244353  # < 2**30

    def _rand(self, rng, n=256):
        return rng.integers(0, self.Q, size=n, dtype=np.uint64)

    def test_vec_add_sub_mul(self):
        rng = np.random.default_rng(0)
        a, b = self._rand(rng), self._rand(rng)
        np.testing.assert_array_equal(
            modular.vec_mod_add(a, b, self.Q),
            (a.astype(object) + b.astype(object)) % self.Q,
        )
        np.testing.assert_array_equal(
            modular.vec_mod_sub(a, b, self.Q),
            (a.astype(object) - b.astype(object)) % self.Q,
        )
        np.testing.assert_array_equal(
            modular.vec_mod_mul(a, b, self.Q),
            (a.astype(object) * b.astype(object)) % self.Q,
        )

    def test_vec_neg(self):
        rng = np.random.default_rng(1)
        a = self._rand(rng)
        s = modular.vec_mod_add(a, modular.vec_mod_neg(a, self.Q), self.Q)
        assert not s.any()

    def test_vec_exp(self):
        rng = np.random.default_rng(2)
        a = self._rand(rng, 32)
        for e in [0, 1, 2, 5, 1000]:
            expected = np.array([pow(int(x), e, self.Q) for x in a], dtype=np.uint64)
            np.testing.assert_array_equal(modular.vec_mod_exp(a, e, self.Q), expected)

    def test_vector_modulus_guard(self):
        with pytest.raises(ValueError):
            modular.vec_mod_mul(np.array([1]), np.array([1]), 1 << 31)

    def test_balanced_representation(self):
        q = 17
        a = np.arange(q, dtype=np.uint64)
        bal = modular.balanced_representation(a, q)
        assert bal.min() == -(q // 2)
        assert bal.max() == q // 2
        np.testing.assert_array_equal(bal % q, a.astype(np.int64))

    @given(st.lists(st.integers(min_value=0, max_value=998244352),
                    min_size=1, max_size=64))
    def test_vec_mul_property(self, values):
        a = np.array(values, dtype=np.uint64)
        got = modular.vec_mod_mul(a, a, self.Q)
        expected = np.array([(v * v) % self.Q for v in values], dtype=np.uint64)
        np.testing.assert_array_equal(got, expected)
