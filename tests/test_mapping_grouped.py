"""Tests for the grouped-CG mode: multiple short NTTs per register row
(paper §IV-A: "the CG network also can be divided into multiple
independent groups to allow multiple smaller NTTs to execute in
parallel")."""

import numpy as np
import pytest

from repro.core import NttStage, Program, VectorProcessingUnit
from repro.mapping import (
    NttMappingError,
    compile_grouped_intt,
    compile_grouped_ntt,
)
from repro.ntt import ntt_dif
from repro.ntt.tables import get_tables

Q = 998244353


def run(m, c, x, forward=True, also_inverse=False):
    vpu = VectorProcessingUnit(m=m, q=Q)
    t = get_tables(c, Q)
    prog = Program()
    if forward:
        compile_grouped_ntt(m, c, t.omega, Q, prog)
    if also_inverse or not forward:
        compile_grouped_intt(m, c, t.omega_inv, Q, prog)
    vpu.regfile.write(0, np.asarray(x, dtype=np.uint64))
    stats = vpu.run_fresh(prog)
    return vpu.regfile.read(0), stats, prog


class TestGroupedNtt:
    @pytest.mark.parametrize("m,c", [(16, 4), (16, 8), (64, 16), (64, 64)])
    def test_each_group_transforms_independently(self, m, c):
        rng = np.random.default_rng(m + c)
        x = rng.integers(0, Q, m, dtype=np.uint64)
        out, _, _ = run(m, c, x)
        t = get_tables(c, Q)
        for g in range(m // c):
            sub = [int(v) for v in x[g * c:(g + 1) * c]]
            expected = ntt_dif(sub, t)
            assert [int(v) for v in out[g * c:(g + 1) * c]] == expected

    @pytest.mark.parametrize("m,c", [(16, 4), (64, 16)])
    def test_roundtrip(self, m, c):
        rng = np.random.default_rng(2 * m + c)
        x = rng.integers(0, Q, m, dtype=np.uint64)
        out, _, _ = run(m, c, x, forward=True, also_inverse=True)
        np.testing.assert_array_equal(out, x)

    def test_cycle_count_is_log_c(self):
        """Short dims cost log2(c) stages — the full-width lanes stay
        busy with m/c transforms in flight, the §IV-A utilization point."""
        t = get_tables(8, Q)
        prog = Program()
        compile_grouped_ntt(64, 8, t.omega, Q, prog)
        assert len(prog) == 3
        assert all(isinstance(i, NttStage) and i.group_size == 8 for i in prog)

    def test_full_width_group_matches_small_ntt(self):
        """c == m degenerates to the ordinary length-m NTT."""
        from repro.mapping import compile_small_ntt

        m = 16
        t = get_tables(m, Q)
        x = np.random.default_rng(0).integers(0, Q, m, dtype=np.uint64)
        grouped, _, _ = run(m, m, x)
        vpu = VectorProcessingUnit(m=m, q=Q)
        prog = Program()
        compile_small_ntt(m, t.omega, Q, prog)
        vpu.regfile.write(0, x)
        vpu.execute(prog)
        np.testing.assert_array_equal(grouped, vpu.regfile.read(0))

    def test_group_of_two(self):
        """c = 2: each pair of adjacent lanes is one 2-point NTT (a bare
        butterfly; the CG group routing is the identity)."""
        m, c = 16, 2
        t = get_tables(c, Q)
        x = np.random.default_rng(4).integers(0, Q, m, dtype=np.uint64)
        out, _, prog = run(m, c, x)
        assert len(prog) == 1
        for g in range(m // 2):
            u, v = int(x[2 * g]), int(x[2 * g + 1])
            assert int(out[2 * g]) == (u + v) % Q
            assert int(out[2 * g + 1]) == (u - v) % Q

    def test_validation(self):
        prog = Program()
        with pytest.raises(NttMappingError):
            compile_grouped_ntt(16, 3, 1, Q, prog)
        with pytest.raises(NttMappingError):
            compile_grouped_ntt(16, 32, 1, Q, prog)
        with pytest.raises(NttMappingError):
            compile_grouped_ntt(16, 1, 1, Q, prog)
        with pytest.raises(NttMappingError):
            compile_grouped_intt(16, 3, 1, Q, prog)
