"""Edge-of-validity tests for the production gates in analysis.bounds.

The gates answer "may the fast path run?" right at the boundaries the
paper's parameter space touches: the widest vectorized modulus (just
below 2^31), the Shoup precision limit (2^30), and the degenerate
smallest shapes (log_n <= 1, a single keyswitch digit).  Each gate
answer is cross-checked against the symbolic stage-plan analysis so the
cheap boolean and the full derivation can never drift apart.
"""

from repro.analysis.bounds import (
    compiled_ntt_ok,
    keyswitch_lazy_accumulate_ok,
    mul_fits_uint64,
    ntt_shoup_ok,
    unclamped_dit_ok,
)
from repro.analysis.stage_plans import (
    analyze_batched_forward,
    analyze_keyswitch_accumulate,
)
from repro.arith.primes import find_ntt_prime


class TestCompiledNttModulusEdge:
    def test_widest_vectorized_modulus_accepted(self):
        # Largest NTT-friendly prime below 2^31 for n=256 negacyclic.
        q = find_ntt_prime(512, 31)
        assert q == 2147483137
        assert compiled_ntt_ok(8, q)

    def test_32_bit_modulus_refused(self):
        q = find_ntt_prime(512, 32)
        assert q == 4294962689
        assert not compiled_ntt_ok(8, q)

    def test_gate_agrees_with_stage_analysis_on_both_sides(self):
        for bits in (31, 32):
            q = find_ntt_prime(512, bits)
            assert compiled_ntt_ok(8, q) == analyze_batched_forward(8, q).ok


class TestShoupPrecisionEdge:
    def test_just_below_2_30_accepted(self):
        assert ntt_shoup_ok(8, find_ntt_prime(512, 30))

    def test_31_bit_modulus_refused(self):
        # Interval-precise: the wide modulus breaks the 2^32 Shoup radix
        # even though it fits the plain lazy path.
        q = find_ntt_prime(512, 31)
        assert not ntt_shoup_ok(8, q)
        assert compiled_ntt_ok(8, q)


class TestDegenerateShapes:
    """log_n <= 1 and single-digit keyswitch must not over-reject."""

    def test_two_point_ntt_accepted(self):
        assert compiled_ntt_ok(1, 257)
        assert ntt_shoup_ok(1, 257)
        assert unclamped_dit_ok(1, 257)

    def test_log_n_zero_does_not_raise(self):
        # A 1-point transform is vacuously safe for any sane modulus.
        assert compiled_ntt_ok(0, 257)
        assert ntt_shoup_ok(0, 257)

    def test_degenerate_analysis_agreement(self):
        assert analyze_batched_forward(1, 257).ok

    def test_single_digit_keyswitch_accepted(self):
        q = find_ntt_prime(512, 31)
        assert keyswitch_lazy_accumulate_ok(1, q)
        report = analyze_keyswitch_accumulate(1, q, lazy=True)
        assert report.ok, list(report.findings)

    def test_zero_digit_keyswitch_does_not_raise(self):
        assert keyswitch_lazy_accumulate_ok(0, find_ntt_prime(512, 31))


class TestMulFitsUint64:
    def test_exact_boundary(self):
        assert mul_fits_uint64(2**32 - 1, 2**32 + 1)        # == 2^64 - 1
        assert not mul_fits_uint64(2**32, 2**32)            # == 2^64
