"""WAL framing and journal-record tests: append durability, torn-tail
detection and truncation, CRC/sequence verification, and the serve
request ledger."""

import struct

import pytest

from repro.recover.journal import (RT_BEGIN, RT_OP_DONE, RT_SERVE_RESOLVE,
                                   RT_SERVE_SUBMIT, JournalError,
                                   RequestJournal, decode, encode)
from repro.recover.wal import (Record, TornLogError, WriteAheadLog, scan,
                               truncate_torn_tail)

_HEADER = struct.Struct("<IIQB")


class TestAppendAndScan:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadLog(path) as wal:
            for index in range(5):
                assert wal.append(RT_OP_DONE,
                                  b"payload-%d" % index) == index
        result = scan(path)
        assert not result.torn
        assert [r.payload for r in result.records] == [
            b"payload-%d" % i for i in range(5)]
        assert [r.seq for r in result.records] == list(range(5))

    def test_empty_and_missing(self, tmp_path):
        assert scan(tmp_path / "absent.wal").records == []
        (tmp_path / "empty.wal").write_bytes(b"")
        result = scan(tmp_path / "empty.wal")
        assert result.records == [] and not result.torn

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RT_BEGIN, b"a")
        with WriteAheadLog(path) as wal:
            assert wal.next_seq == 1
            assert wal.append(RT_OP_DONE, b"b") == 1
        assert len(scan(path).records) == 2


class TestTornTail:
    def _whole(self, path, n=4):
        with WriteAheadLog(path) as wal:
            for index in range(n):
                wal.append(RT_OP_DONE, b"rec-%d" % index)

    def test_half_written_record_detected(self, tmp_path):
        path = tmp_path / "j.wal"
        self._whole(path)
        whole = path.read_bytes()
        path.write_bytes(whole + whole[:_HEADER.size + 2])  # torn tail
        result = scan(path)
        assert result.torn
        assert len(result.records) == 4
        assert result.valid_bytes == len(whole)

    def test_bit_flip_truncates_from_corruption(self, tmp_path):
        path = tmp_path / "j.wal"
        self._whole(path)
        blob = bytearray(path.read_bytes())
        blob[_HEADER.size + 1] ^= 0x40  # corrupt record 0's payload
        path.write_bytes(bytes(blob))
        result = scan(path)
        assert result.torn and result.records == []

    def test_truncate_then_append(self, tmp_path):
        path = tmp_path / "j.wal"
        self._whole(path)
        path.write_bytes(path.read_bytes() + b"\x99" * 7)
        result = scan(path)
        truncate_torn_tail(path, result.valid_bytes)
        clean = scan(path)
        assert not clean.torn and len(clean.records) == 4
        with WriteAheadLog(path) as wal:
            wal.append(RT_OP_DONE, b"rec-4")
        assert len(scan(path).records) == 5

    def test_open_clean_reports_pre_truncation_state(self, tmp_path):
        path = tmp_path / "j.wal"
        self._whole(path)
        path.write_bytes(path.read_bytes() + b"\x07" * 3)
        wal, result = WriteAheadLog.open_clean(path)
        wal.close()
        assert result.torn  # the signal recovery turns into a finding
        assert len(result.records) == 4
        assert not scan(path).torn  # but the file itself is now clean

    def test_plain_open_refuses_torn_file(self, tmp_path):
        path = tmp_path / "j.wal"
        self._whole(path)
        path.write_bytes(path.read_bytes() + b"\x07" * 3)
        with pytest.raises(TornLogError):
            WriteAheadLog(path)

    def test_absurd_length_field_is_torn_not_oom(self, tmp_path):
        path = tmp_path / "j.wal"
        self._whole(path, n=1)
        path.write_bytes(path.read_bytes()
                         + _HEADER.pack(1 << 30, 0, 1, RT_OP_DONE))
        result = scan(path)
        assert result.torn and len(result.records) == 1


class TestJournalCodec:
    def test_roundtrip(self):
        payload = {"index": 3, "digest": "ab" * 32}
        record = Record(0, RT_OP_DONE, encode(payload))
        assert decode(record) == payload

    def test_bad_json_is_typed(self):
        with pytest.raises(JournalError):
            decode(Record(0, RT_OP_DONE, b"\xff\xfe"))
        with pytest.raises(JournalError):
            decode(Record(0, RT_OP_DONE, b"[1,2]"))


class TestRequestJournal:
    def test_pending_is_submits_minus_resolves(self, tmp_path):
        journal = RequestJournal(tmp_path / "req.wal")
        journal.record_submit(1, tenant="a", op="hmult", timeout_s=1.5)
        journal.record_submit(2, tenant="b", op="hrot", timeout_s=0.25,
                              payload=7)
        journal.record_resolve(1, "ok")
        journal.close()
        pending = RequestJournal(tmp_path / "req.wal").pending()
        assert len(pending) == 1
        entry = pending[0]
        assert entry["id"] == 2 and entry["tenant"] == "b"
        assert entry["op"] == "hrot" and entry["payload"] == 7
        assert entry["timeout_s"] == pytest.approx(0.25)

    def test_pending_survives_torn_tail(self, tmp_path):
        journal = RequestJournal(tmp_path / "req.wal")
        journal.record_submit(1, tenant="a", op="hmult", timeout_s=1.0)
        journal.record_submit(2, tenant="a", op="hmult", timeout_s=1.0)
        journal.close()
        path = tmp_path / "req.wal"
        blob = path.read_bytes()
        path.write_bytes(blob + blob[:9])  # torn submit
        pending = RequestJournal(path).pending()
        assert [entry["id"] for entry in pending] == [1, 2]

    def test_record_types_distinct(self):
        assert RT_SERVE_SUBMIT != RT_SERVE_RESOLVE
