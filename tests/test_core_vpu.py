"""Tests for the register file, ISA and VPU executor."""

import numpy as np
import pytest

from repro.automorphism import affine_controls
from repro.core import (
    Butterfly,
    Load,
    NetworkConfig,
    NetworkPass,
    Program,
    RegisterFile,
    Store,
    VAdd,
    VMul,
    VMulScalar,
    VMulTwiddle,
    VSub,
    VectorProcessingUnit,
)
from repro.ntt.tables import get_tables

Q = 998244353


def fresh_vpu(m=8, q=Q, **kw):
    return VectorProcessingUnit(m=m, q=q, **kw)


class TestRegisterFile:
    def test_read_write(self):
        rf = RegisterFile(4, 8)
        rf.write(3, np.array([1, 2, 3, 4], dtype=np.uint64))
        np.testing.assert_array_equal(rf.read(3), [1, 2, 3, 4])

    def test_bounds(self):
        rf = RegisterFile(4, 8)
        with pytest.raises(IndexError):
            rf.read(8)
        with pytest.raises(IndexError):
            rf.write(-1, np.zeros(4, dtype=np.uint64))

    def test_shape_check(self):
        rf = RegisterFile(4, 8)
        with pytest.raises(ValueError):
            rf.write(0, np.zeros(5, dtype=np.uint64))

    def test_port_budget(self):
        rf = RegisterFile(4, 8)
        rf.check_ports([1, 2], [3])  # fine
        rf.check_ports([1, 1], [3])  # same reg twice is one port
        with pytest.raises(ValueError):
            rf.check_ports([1, 2, 3], [0])
        with pytest.raises(ValueError):
            rf.check_ports([1], [2, 3])


class TestElementwiseOps:
    def test_add_sub_mul(self):
        vpu = fresh_vpu()
        rng = np.random.default_rng(0)
        a = rng.integers(0, Q, 8, dtype=np.uint64)
        b = rng.integers(0, Q, 8, dtype=np.uint64)
        vpu.regfile.write(0, a)
        vpu.regfile.write(1, b)
        prog = Program([VAdd(2, 0, 1), VSub(3, 0, 1), VMul(4, 0, 1)])
        vpu.execute(prog)
        np.testing.assert_array_equal(vpu.regfile.read(2), (a + b) % Q)
        np.testing.assert_array_equal(vpu.regfile.read(3),
                                      (a.astype(np.int64) - b.astype(np.int64)) % Q)
        np.testing.assert_array_equal(
            vpu.regfile.read(4),
            (a.astype(object) * b.astype(object)) % Q)

    def test_scalar_and_twiddle_mul(self):
        vpu = fresh_vpu()
        a = np.arange(8, dtype=np.uint64)
        tw = tuple(range(10, 18))
        vpu.regfile.write(0, a)
        vpu.execute(Program([VMulScalar(1, 0, 7), VMulTwiddle(2, 0, tw)]))
        np.testing.assert_array_equal(vpu.regfile.read(1), a * 7 % Q)
        np.testing.assert_array_equal(vpu.regfile.read(2),
                                      a * np.array(tw, dtype=np.uint64) % Q)

    def test_twiddle_length_check(self):
        vpu = fresh_vpu()
        with pytest.raises(ValueError):
            vpu.execute(Program([VMulTwiddle(1, 0, (1, 2, 3))]))

    def test_wide_modulus_scalar_path(self):
        from repro.arith import find_ntt_prime

        q = find_ntt_prime(16, 60)
        vpu = fresh_vpu(q=q)
        a = np.array([q - 1] * 8, dtype=np.uint64)
        vpu.regfile.write(0, a)
        vpu.execute(Program([VMul(1, 0, 0)]))
        expected = pow(q - 1, 2, q)
        assert all(int(v) == expected for v in vpu.regfile.read(1))


class TestButterfly:
    def test_dif_butterfly(self):
        vpu = fresh_vpu()
        x = np.arange(8, dtype=np.uint64)
        tw = (3, 5, 7, 11)
        vpu.regfile.write(0, x)
        vpu.execute(Program([Butterfly("dif", 1, 0, tw)]))
        out = vpu.regfile.read(1)
        for j in range(4):
            u, v = int(x[2 * j]), int(x[2 * j + 1])
            assert int(out[2 * j]) == (u + v) % Q
            assert int(out[2 * j + 1]) == (u - v) * tw[j] % Q

    def test_dit_butterfly(self):
        vpu = fresh_vpu()
        x = np.arange(8, dtype=np.uint64)
        tw = (3, 5, 7, 11)
        vpu.regfile.write(0, x)
        vpu.execute(Program([Butterfly("dit", 1, 0, tw)]))
        out = vpu.regfile.read(1)
        for j in range(4):
            u, v = int(x[2 * j]), int(x[2 * j + 1])
            t = v * tw[j] % Q
            assert int(out[2 * j]) == (u + t) % Q
            assert int(out[2 * j + 1]) == (u - t) % Q

    def test_kind_check(self):
        with pytest.raises(ValueError):
            Butterfly("xxx", 1, 0, (1,))

    def test_twiddle_count_check(self):
        vpu = fresh_vpu()
        with pytest.raises(ValueError):
            vpu.execute(Program([Butterfly("dif", 1, 0, (1, 2))]))


class TestMemoryAndNetwork:
    def test_load_store_roundtrip(self):
        vpu = fresh_vpu()
        row = np.arange(8, dtype=np.uint64)
        vpu.memory.data[5] = row
        vpu.execute(Program([Load(0, 5), Store(0, 6)]))
        np.testing.assert_array_equal(vpu.memory.data[6], row)

    def test_vector_memory_pack_unpack(self):
        vpu = fresh_vpu()
        x = np.arange(32, dtype=np.uint64)
        vpu.memory.load_vector(x, base_row=2)
        np.testing.assert_array_equal(vpu.memory.read_vector(32, base_row=2), x)

    def test_memory_validation(self):
        vpu = fresh_vpu()
        with pytest.raises(ValueError):
            vpu.memory.load_vector(np.arange(5))
        with pytest.raises(ValueError):
            vpu.memory.read_vector(12)

    def test_network_pass_instruction(self):
        vpu = fresh_vpu()
        x = np.arange(8, dtype=np.uint64)
        vpu.regfile.write(0, x)
        config = NetworkConfig(shift=affine_controls(8, 1, 3))
        vpu.execute(Program([NetworkPass(1, 0, config)]))
        np.testing.assert_array_equal(vpu.regfile.read(1), np.roll(x, 3))


class TestStats:
    def test_resource_accounting(self):
        vpu = fresh_vpu()
        tw = tuple([1] * 4)
        prog = Program([
            VAdd(2, 0, 1),
            VMul(3, 0, 1),
            Butterfly("dif", 4, 0, tw),
            NetworkPass(5, 0, NetworkConfig()),
            Load(6, 0),
            Store(6, 1),
        ])
        stats = vpu.run_fresh(prog)
        assert stats.cycles == 6
        assert stats.multiplier_busy == 2  # VMul + Butterfly
        assert stats.adder_busy == 2       # VAdd + Butterfly
        assert stats.network_passes == 1
        assert stats.loads == 1 and stats.stores == 1
        assert stats.by_type["VAdd"] == 1

    def test_compute_utilization(self):
        vpu = fresh_vpu()
        prog = Program([VAdd(2, 0, 1), NetworkPass(3, 0, NetworkConfig())])
        stats = vpu.run_fresh(prog)
        assert stats.compute_utilization() == 0.5

    def test_modulus_rebind(self):
        vpu = fresh_vpu()
        vpu.set_modulus(12289)
        assert vpu.q == 12289
        vpu.regfile.write(0, np.full(8, 12288, dtype=np.uint64))
        vpu.execute(Program([VMul(1, 0, 0)]))
        assert all(int(v) == 1 for v in vpu.regfile.read(1))
