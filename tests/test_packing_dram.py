"""Tests for vector packing utilities and the off-chip traffic model."""

import numpy as np
import pytest

from repro.accel.dram import (
    DramModel,
    decomposed_ntt_traffic,
    decomposition_advantage,
    naive_ntt_traffic,
)
from repro.fhe.ckks import CkksContext
from repro.fhe.packing import (
    add_packed,
    decrypt_vector,
    encrypt_vector,
    inner_sum,
    multiply_packed,
    multiply_plain_packed,
    rotation_keys_for_inner_sum,
)
from repro.fhe.params import CkksParams, toy_params


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(toy_params(), seed=71)


class TestPackedVectors:
    def test_roundtrip_odd_length(self, ctx):
        values = np.random.default_rng(0).uniform(-1, 1, 300)  # 3 chunks of 128
        packed = encrypt_vector(ctx, values)
        assert packed.num_ciphertexts == 3
        np.testing.assert_allclose(decrypt_vector(ctx, packed).real, values,
                                   atol=1e-3)

    def test_single_chunk(self, ctx):
        values = np.random.default_rng(1).uniform(-1, 1, 50)
        packed = encrypt_vector(ctx, values)
        assert packed.num_ciphertexts == 1
        np.testing.assert_allclose(decrypt_vector(ctx, packed).real, values,
                                   atol=1e-3)

    def test_add_and_multiply(self, ctx):
        rng = np.random.default_rng(2)
        a = rng.uniform(-1, 1, 200)
        b = rng.uniform(-1, 1, 200)
        pa, pb = encrypt_vector(ctx, a), encrypt_vector(ctx, b)
        np.testing.assert_allclose(
            decrypt_vector(ctx, add_packed(ctx, pa, pb)).real, a + b, atol=2e-3)
        np.testing.assert_allclose(
            decrypt_vector(ctx, multiply_packed(ctx, pa, pb)).real, a * b,
            atol=3e-3)

    def test_multiply_plain(self, ctx):
        rng = np.random.default_rng(3)
        a = rng.uniform(-1, 1, 150)
        w = rng.uniform(-1, 1, 150)
        pa = encrypt_vector(ctx, a)
        np.testing.assert_allclose(
            decrypt_vector(ctx, multiply_plain_packed(ctx, pa, w)).real,
            a * w, atol=2e-3)

    def test_inner_sum(self):
        ctx = CkksContext(toy_params(), seed=72)
        ctx.generate_galois_keys(
            rotation_keys_for_inner_sum(ctx.params.slots))
        values = np.random.default_rng(4).uniform(-1, 1, 200)
        packed = encrypt_vector(ctx, values)
        total = inner_sum(ctx, packed)
        assert abs(total.real - values.sum()) < 0.05

    def test_validation(self, ctx):
        with pytest.raises(ValueError):
            encrypt_vector(ctx, np.zeros((2, 2)))
        a = encrypt_vector(ctx, np.zeros(10))
        b = encrypt_vector(ctx, np.zeros(20))
        with pytest.raises(ValueError):
            add_packed(ctx, a, b)
        with pytest.raises(ValueError):
            multiply_plain_packed(ctx, a, np.zeros(5))


class TestSparseSecret:
    def test_sparse_secret_context_works(self):
        params = CkksParams(n=256, levels=2, scale_bits=26, prime_bits=28,
                            secret_hamming_weight=64)
        ctx = CkksContext(params, seed=73)
        z = np.random.default_rng(5).uniform(-1, 1, params.slots)
        np.testing.assert_allclose(ctx.decrypt(ctx.encrypt(z)).real, z,
                                   atol=1e-3)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            CkksParams(n=256, secret_hamming_weight=257)


class TestDramModel:
    SRAM = 1 << 20  # 1 MiB

    def test_fits_on_chip_equivalence(self):
        n = 4096  # 32 KiB << SRAM
        naive = naive_ntt_traffic(n, self.SRAM)
        decomposed = decomposed_ntt_traffic(n, 64, self.SRAM)
        assert naive.burst_bytes_moved == decomposed.burst_bytes_moved

    def test_strided_naive_pays_burst_waste(self):
        n = 1 << 20  # 8 MiB >> SRAM
        naive = naive_ntt_traffic(n, self.SRAM)
        assert naive.burst_efficiency < 0.5  # most burst bytes wasted

    def test_decomposition_wins_off_chip(self):
        """§II-B quantified: the decomposed schedule moves far fewer
        off-chip bytes once the polynomial exceeds the scratchpad."""
        advantage = decomposition_advantage(1 << 20, 64, self.SRAM)
        assert advantage > 3.0

    def test_advantage_large_at_every_offchip_size(self):
        """The ratio is not monotonic in N (the decomposed schedule's
        dimension count steps every log2(m) bits), but it stays an order
        of magnitude at every off-chip size."""
        for log_n in [18, 20, 22]:
            assert decomposition_advantage(1 << log_n, 64, self.SRAM) > 10

    def test_bandwidth_and_energy(self):
        dram = DramModel(bandwidth_gbps=512, energy_pj_per_byte=15)
        assert dram.transfer_ns(512) == pytest.approx(1.0)
        assert dram.energy_nj(1000) == pytest.approx(15.0)

    def test_tile_must_fit(self):
        with pytest.raises(ValueError):
            decomposed_ntt_traffic(1 << 20, 1024, sram_bytes=1 << 10)
