"""Tests for matrix-vector mapping and the multi-VPU pool."""

import numpy as np
import pytest

from repro.accel.parallel import ParallelVpuPool
from repro.core import VectorProcessingUnit
from repro.mapping.matmul import (
    compile_dot_product,
    compile_matvec,
    matvec_cycle_count,
)
from repro.ntt import vec_ntt_dif
from repro.ntt.tables import get_tables

Q = 998244353


class TestDotProduct:
    @pytest.mark.parametrize("m", [4, 16, 64])
    def test_matches_numpy(self, m):
        vpu = VectorProcessingUnit(m=m, q=Q)
        rng = np.random.default_rng(m)
        a = rng.integers(0, Q, m, dtype=np.uint64)
        b = rng.integers(0, Q, m, dtype=np.uint64)
        vpu.regfile.write(0, a)
        vpu.regfile.write(1, b)
        vpu.execute(compile_dot_product(m, 0, 1, 2, 3))
        expected = int((a.astype(object) * b.astype(object)).sum() % Q)
        assert all(int(v) == expected for v in vpu.regfile.read(2))

    def test_register_validation(self):
        with pytest.raises(ValueError):
            compile_dot_product(8, 0, 1, 1, 3)
        with pytest.raises(ValueError):
            compile_dot_product(8, 0, 1, 2, 2)


class TestMatvec:
    def test_matches_numpy(self):
        m, rows = 16, 4
        vpu = VectorProcessingUnit(m=m, q=Q, regfile_entries=32)
        rng = np.random.default_rng(1)
        matrix = rng.integers(0, Q, (rows, m), dtype=np.uint64)
        x = rng.integers(0, Q, m, dtype=np.uint64)
        for i in range(rows):
            vpu.regfile.write(2 + i, matrix[i])
        vpu.regfile.write(0, x)
        prog = compile_matvec(m, rows, matrix_base=2, x_reg=0,
                              out_base=8, tmp_reg=1)
        stats = vpu.run_fresh(prog)
        expected = (matrix.astype(object) @ x.astype(object)) % Q
        for i in range(rows):
            assert all(int(v) == int(expected[i]) for v in vpu.regfile.read(8 + i))
        assert stats.cycles == matvec_cycle_count(m, rows)

    def test_cycle_model(self):
        assert matvec_cycle_count(64, 8) == 8 * (1 + 12)


class TestParallelPool:
    def test_bit_identical_to_single_vpu(self):
        n, m = 256, 16
        pool = ParallelVpuPool(num_vpus=4, m=m, q=Q)
        rng = np.random.default_rng(2)
        batch = rng.integers(0, Q, (6, n), dtype=np.uint64)
        outputs, report = pool.run_ntt_batch(batch, n)
        t = get_tables(n, Q)
        for i in range(6):
            expected = np.empty(n, dtype=np.uint64)
            expected[t.bitrev] = vec_ntt_dif(batch[i], t)
            np.testing.assert_array_equal(outputs[i], expected)
        assert report.instances == 6

    def test_speedup_and_balance(self):
        n, m = 256, 16
        pool = ParallelVpuPool(num_vpus=3, m=m, q=Q)
        batch = np.random.default_rng(3).integers(0, Q, (6, n), dtype=np.uint64)
        _, report = pool.run_ntt_batch(batch, n)
        # 6 instances over 3 VPUs: perfect balance, 3x speedup.
        assert report.speedup == pytest.approx(3.0)
        assert len(set(report.per_vpu_cycles)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelVpuPool(0, 16, Q)
        pool = ParallelVpuPool(2, 16, Q)
        with pytest.raises(ValueError):
            pool.run_ntt_batch(np.zeros((2, 100), dtype=np.uint64), 256)
