"""Tests for shift-network control generation — the single-pass theorem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automorphism import (
    AffinePermutation,
    RoutingConflictError,
    ShiftControls,
    affine_controls,
    control_table,
    control_table_size_bits,
    paper_sigma,
    route_distance_map,
    uniform_shift_controls,
)
from repro.automorphism.controls import controls_for_permutation, merge_with_shift


class TestControlStructure:
    @pytest.mark.parametrize("m", [2, 4, 8, 64, 256])
    def test_total_bits_is_m_minus_1(self, m):
        c = affine_controls(m, 3 % m if (3 % m) % 2 else 1, 0)
        assert c.total_bits == m - 1

    def test_stage_distances_descend(self):
        c = affine_controls(64, 5)
        assert c.stage_distances() == [32, 16, 8, 4, 2, 1]

    def test_group_counts(self):
        c = affine_controls(8, 3)
        assert [len(bits) for bits in c.group_bits] == [1, 2, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShiftControls(6, ((0,),))
        with pytest.raises(ValueError):
            ShiftControls(8, ((0,), (0, 0)))  # missing a stage
        with pytest.raises(ValueError):
            ShiftControls(4, ((0, 0), (0,)))  # wrong group count
        with pytest.raises(ValueError):
            affine_controls(8, 2)

    def test_lane_selects_expand_groups(self):
        c = affine_controls(8, 3)
        for b in range(3):
            sel = c.lane_selects(b)
            d = 1 << b
            for j in range(8):
                assert sel[j] == c.group_bits[b][j % d]

    def test_table_size(self):
        """Paper §IV-B: m=64 needs (m/2)(m-1) = 2016 bits ~ 2 kbit."""
        assert control_table_size_bits(64) == 2016
        assert control_table_size_bits(8) == 28

    def test_control_table_covers_odd_multipliers(self):
        table = control_table(16)
        assert set(table) == {1, 3, 5, 7, 9, 11, 13, 15}
        for c in table.values():
            assert c.total_bits == 15


class TestSinglePassRouting:
    @pytest.mark.parametrize("m", [2, 4, 8, 16, 32, 64, 128, 256])
    def test_all_automorphisms_route_exhaustively(self, m):
        """THE paper claim: every automorphism (odd multiplier) traverses
        the shift network in exactly one pass."""
        x = np.arange(m)
        for k in range(1, m, 2):
            perm = AffinePermutation(m, k, 0)
            out = affine_controls(m, k).apply(x)
            expected = perm.apply(x)
            np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("m", [8, 64])
    def test_affine_with_offsets_route(self, m):
        """Generalization used by Eq. 2 merging: automorphism + shift."""
        x = np.arange(m)
        for k in range(1, m, 2):
            for s in range(0, m, max(1, m // 8)):
                perm = AffinePermutation(m, k, s)
                out = affine_controls(m, k, s).apply(x)
                np.testing.assert_array_equal(out, perm.apply(x))

    def test_uniform_shift(self):
        m = 16
        x = np.arange(m)
        for amount in range(m):
            out = uniform_shift_controls(m, amount).apply(x)
            np.testing.assert_array_equal(out, np.roll(x, amount))

    def test_merge_with_shift_composes(self):
        m = 64
        x = np.arange(m)
        for k in [3, 5, 25]:
            for s in [0, 7, 63]:
                merged = merge_with_shift(k, s, m)
                expected = AffinePermutation(m, k, s).apply(x)
                np.testing.assert_array_equal(merged.apply(x), expected)

    def test_controls_for_permutation(self):
        perm = paper_sigma(64, 2)
        c = controls_for_permutation(perm)
        np.testing.assert_array_equal(c.apply(np.arange(64)), perm.apply(np.arange(64)))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2**16),
           st.integers(min_value=0, max_value=2**16))
    def test_affine_routing_property(self, log_m, k_raw, s):
        m = 1 << log_m
        k = (2 * k_raw + 1) % m
        perm = AffinePermutation(m, k, s % m)
        out = affine_controls(m, k, s % m).apply(np.arange(m))
        np.testing.assert_array_equal(out, perm.apply(np.arange(m)))


class TestGenericRouter:
    def test_affine_maps_always_route(self):
        m = 32
        for k in range(1, m, 2):
            perm = AffinePermutation(m, k, 3)
            c = route_distance_map(m, perm.shift_distances())
            np.testing.assert_array_equal(
                c.apply(np.arange(m)), perm.apply(np.arange(m))
            )

    def test_router_matches_closed_form(self):
        m = 64
        for k in [3, 5, 25, 63]:
            perm = AffinePermutation(m, k, 0)
            assert (route_distance_map(m, perm.shift_distances()).group_bits
                    == affine_controls(m, k).group_bits)

    def test_irregular_map_rejected(self):
        """Fig. 3b's irregular shifts (0,1,3,0 on a 4-element column)
        cannot route in one pass — the reason the mapping layer inserts a
        CG pass first."""
        with pytest.raises(RoutingConflictError):
            route_distance_map(4, np.array([0, 1, 3, 0]))

    def test_non_bijective_map_rejected(self):
        # Everyone shifts onto lane of neighbor: distances all 1 is fine
        # (pure shift), but distances [1,0,0,0] collide.
        with pytest.raises(RoutingConflictError):
            route_distance_map(4, np.array([1, 0, 0, 0]))

    def test_length_check(self):
        with pytest.raises(ValueError):
            route_distance_map(8, np.zeros(4, dtype=np.int64))


class TestAgainstRecursiveDecomposition:
    """The controls and the recursive decomposition agree: merging the
    recursion's strided shifts produces exactly the distances the router
    consumes, and both realize the same permutation."""

    @pytest.mark.parametrize("m", [4, 16, 64])
    def test_agreement(self, m):
        from repro.automorphism import merge_shifts, recursive_shift_decomposition

        x = np.arange(m)
        for k in range(1, m, 2):
            perm = AffinePermutation(m, k, 0)
            merged = merge_shifts(recursive_shift_decomposition(perm), m)
            via_router = route_distance_map(m, merged)
            via_closed_form = affine_controls(m, k)
            np.testing.assert_array_equal(
                via_router.apply(x), via_closed_form.apply(x)
            )
