"""Request-scoped trace contexts: binding, stitching, per-trace
attribution, span-tree well-formedness, and the flow-event export.

The load-bearing assertions: spans minted while a context is bound
carry that context's trace id; spans begun in *another* logical task
(fresh tracer stack, no shared call frames) stitch under the request's
root by ``parent_id``; per-trace cycle totals reconcile exactly with
the tracer's global total; and :func:`check_span_tree` catches each
malformation class the chaos campaign guards against.
"""

import contextvars
import json

from repro.obs import Observer, Tracer
from repro.obs.context import (
    TraceContext,
    bind_trace,
    check_span_tree,
    current_trace_context,
    new_trace_id,
    per_trace_cycles,
    trace_scope,
    unbind_trace,
)
from repro.obs.export import to_chrome_trace, validate_chrome_trace


class TestTraceContext:
    def test_default_is_untraced(self):
        assert current_trace_context() is None

    def test_bind_unbind_roundtrip(self):
        ctx = TraceContext(trace_id=new_trace_id())
        token = bind_trace(ctx)
        assert current_trace_context() is ctx
        unbind_trace(token)
        assert current_trace_context() is None

    def test_trace_scope_restores_on_exception(self):
        ctx = TraceContext(trace_id=new_trace_id())
        try:
            with trace_scope(ctx):
                assert current_trace_context() is ctx
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_trace_context() is None

    def test_child_keeps_trace_id(self):
        ctx = TraceContext(trace_id=7, span_id=3)
        child = ctx.child(9)
        assert child.trace_id == 7
        assert child.span_id == 9

    def test_trace_ids_unique_and_nonzero(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert 0 not in ids

    def test_context_is_task_local(self):
        """contextvars semantics: a binding made inside a copied context
        does not leak into the caller — the asyncio-task isolation the
        serve engine relies on."""
        ctx = TraceContext(trace_id=new_trace_id())

        def bind_inside():
            bind_trace(ctx)
            return current_trace_context()

        inner = contextvars.copy_context().run(bind_inside)
        assert inner is ctx
        assert current_trace_context() is None


class TestSpanStamping:
    def test_untraced_spans_carry_zero_ids(self):
        t = Tracer()
        t.begin("work")
        t.end()
        (span,) = t.spans
        assert span.trace_id == 0
        assert span.parent_id == 0

    def test_bound_context_stamps_spans(self):
        t = Tracer()
        with trace_scope(TraceContext(trace_id=42)):
            root = t.begin("root")
            child = t.begin("child")
            t.end()
            t.end()
        assert root.trace_id == 42
        assert child.trace_id == 42
        assert child.parent_id == root.span_id
        assert root.span_id != 0

    def test_cross_task_stitch_by_parent_id(self):
        """A span begun on a *different* stack (fresh context, as in a
        worker task) stitches under the request root via the context's
        span_id, with no structural parent."""
        obs = Observer()
        handle = obs.begin_request("serve.request")
        ctx = handle.ctx

        def worker():
            with trace_scope(ctx):
                obs.begin("serve.attempt")
                obs.end()

        contextvars.copy_context().run(worker)
        obs.end_request(handle, status="ok")
        root, attempt = obs.tracer.spans[0], obs.tracer.spans[1]
        assert {root.name, attempt.name} == {"serve.request",
                                             "serve.attempt"}
        if root.name != "serve.request":
            root, attempt = attempt, root
        assert attempt.trace_id == root.trace_id == ctx.trace_id
        assert attempt.parent_id == root.span_id
        assert check_span_tree(obs.tracer) == []

    def test_begin_request_restores_previous_binding(self):
        obs = Observer()
        outer = TraceContext(trace_id=new_trace_id())
        token = bind_trace(outer)
        handle = obs.begin_request("serve.request")
        assert current_trace_context().trace_id == handle.ctx.trace_id
        obs.end_request(handle)
        assert current_trace_context() is outer
        unbind_trace(token)

    def test_interleaved_requests_stay_separate(self):
        """Two requests whose spans interleave in wall time never share
        a trace id — the exact failure mode retrospective spans had."""
        obs = Observer()
        a = obs.begin_request("serve.request", request=1)
        ctx_a = a.ctx
        obs.end_request(a)
        b = obs.begin_request("serve.request", request=2)
        ctx_b = b.ctx

        def worker_a():
            with trace_scope(ctx_a):
                obs.begin("serve.attempt")
                obs.end()

        contextvars.copy_context().run(worker_a)
        obs.end_request(b)
        assert ctx_a.trace_id != ctx_b.trace_id
        by_trace = {}
        for span in obs.tracer.spans:
            by_trace.setdefault(span.trace_id, []).append(span.name)
        assert sorted(by_trace[ctx_a.trace_id]) == ["serve.attempt",
                                                    "serve.request"]
        assert by_trace[ctx_b.trace_id] == ["serve.request"]


class TestPerTraceCycles:
    def test_cycles_partition_exactly(self):
        obs = Observer()
        with trace_scope(TraceContext(trace_id=101)):
            obs.begin("a")
            obs.add_cycles(30)
            obs.end()
        with trace_scope(TraceContext(trace_id=202)):
            obs.begin("b")
            obs.add_cycles(12)
            obs.end()
        obs.begin("untraced")
        obs.add_cycles(5)
        obs.end()
        totals = per_trace_cycles(obs.tracer)
        assert totals == {101: 30, 202: 12, 0: 5}
        assert sum(totals.values()) == obs.tracer.total_cycles()


class TestCheckSpanTree:
    def test_clean_tree_has_no_problems(self):
        obs = Observer()
        handle = obs.begin_request("serve.request")
        obs.begin("child")
        obs.end()
        obs.end_request(handle)
        assert check_span_tree(obs.tracer) == []

    def test_unclosed_span_flagged(self):
        t = Tracer()
        t.begin("dangling")
        problems = check_span_tree(t)
        assert any("never closed" in p for p in problems)

    def test_orphan_parent_id_flagged(self):
        t = Tracer()
        with trace_scope(TraceContext(trace_id=5, span_id=999)):
            t.begin("stray")
            t.end()
        problems = check_span_tree(t)
        assert any("orphan" in p for p in problems)

    def test_multiple_roots_flagged(self):
        t = Tracer()
        with trace_scope(TraceContext(trace_id=6)):
            t.begin("root1")
            t.end()
            t.begin("root2")
            t.end()
        problems = check_span_tree(t)
        assert any("root spans" in p for p in problems)

    def test_untraced_parent_containing_traced_root_is_legal(self):
        """recover.resume (untraced) may structurally contain a traced
        request root — only nonzero-vs-nonzero nesting is mis-nesting."""
        obs = Observer()
        obs.begin("recover.resume")
        handle = obs.begin_request("serve.request")
        obs.end_request(handle)
        obs.end()
        assert check_span_tree(obs.tracer) == []

    def test_cross_trace_structural_nesting_flagged(self):
        t = Tracer()
        with trace_scope(TraceContext(trace_id=11)):
            t.begin("outer")
            with trace_scope(TraceContext(trace_id=12)):
                t.begin("inner")
                t.end()
            t.end()
        problems = check_span_tree(t)
        assert any("mis-nested" in p for p in problems)


class TestFlowExport:
    def test_stitched_span_emits_flow_pair(self):
        obs = Observer()
        # The worker's context is copied *before* the request exists
        # (serve workers are created at start()), so its tracer stack is
        # empty and the attempt span has no structural parent — the
        # stitch is purely by parent_id, which is what emits a flow.
        worker_context = contextvars.copy_context()
        handle = obs.begin_request("serve.request")
        ctx = handle.ctx

        def worker():
            with trace_scope(ctx):
                obs.begin("serve.attempt")
                obs.end()

        worker_context.run(worker)
        obs.end_request(handle)
        trace = to_chrome_trace(obs.tracer)
        assert validate_chrome_trace(trace) == []
        phases = [e["ph"] for e in trace["traceEvents"]]
        assert "s" in phases and "f" in phases
        flow_ids = {e["id"] for e in trace["traceEvents"]
                    if e["ph"] in ("s", "f")}
        assert len(flow_ids) >= 1
        # Traced spans land on their request's lane (tid == trace_id).
        lanes = {e["tid"] for e in trace["traceEvents"]
                 if e["ph"] == "X" and "trace_id" in e.get("args", {})}
        assert lanes == {ctx.trace_id}
        json.dumps(trace)  # must be serializable as emitted
