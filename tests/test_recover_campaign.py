"""Kill-campaign tests: forked workers really die by SIGKILL, every
resume classifies, torn writes are detected, and the campaign is
deterministic in its seed.

Forked children exit via SIGKILL or ``os._exit`` only, so pytest's
machinery never runs twice.
"""

import json

import pytest

from repro.fault.crash import (SITE_OP_BOUNDARY, SITE_WAL_MID_RECORD,
                               CrashInjector, CrashSpec, crash_point,
                               install_crash_hook, pending_tear)
from repro.recover.campaign import (CLASS_DETECTED_TORN, CLASS_RECOVERED,
                                    build_workload, run_campaign)
from repro.recover.cli import main


@pytest.fixture(autouse=True)
def _no_leaked_hook():
    yield
    install_crash_hook(None)


class TestCrashPrimitives:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CrashSpec("nonsense", 0)
        with pytest.raises(ValueError):
            CrashSpec(SITE_OP_BOUNDARY, -1)

    def test_crash_point_noop_without_hook(self):
        install_crash_hook(None)
        crash_point(SITE_OP_BOUNDARY)  # must not raise or kill

    def test_pending_tear_counts_occurrences(self):
        spec = CrashSpec(SITE_WAL_MID_RECORD, 2, tear_fraction=0.25)
        install_crash_hook(CrashInjector([spec]))
        assert pending_tear() is None
        assert pending_tear() is None
        assert pending_tear() is spec
        assert pending_tear() is None


class TestWorkloads:
    @pytest.mark.parametrize("name", ["ckks", "bgv"])
    def test_goldens_are_stable(self, name):
        workload = build_workload(name)
        assert workload.golden() == workload.golden()

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            build_workload("paillier")


class TestKillCampaign:
    def test_small_campaign_all_classified(self):
        result = run_campaign(executors=("ckks",), injections=6, seed=5)
        assert len(result.runs) == 6
        assert result.ok
        assert result.silent_divergences == 0
        counts = result.counts
        assert counts[CLASS_RECOVERED] > 0
        assert counts[CLASS_DETECTED_TORN] > 0  # torn writes detected
        assert all(run.crashed for run in result.runs)

    def test_torn_runs_carry_the_finding(self):
        result = run_campaign(executors=("ckks",), injections=4, seed=11)
        for run in result.runs:
            if run.site == SITE_WAL_MID_RECORD:
                assert run.classification == CLASS_DETECTED_TORN
                assert "torn_tail" in run.findings

    def test_deterministic_in_seed(self):
        a = run_campaign(executors=("ckks",), injections=4, seed=9)
        b = run_campaign(executors=("ckks",), injections=4, seed=9)
        assert [r.to_json() for r in a.runs] == [
            r.to_json() for r in b.runs]

    def test_json_shape(self):
        result = run_campaign(executors=("ckks",), injections=2, seed=1)
        payload = result.to_json()
        assert payload["injections"] == 2
        assert set(payload["counts"]) == {
            "recovered_bit_identical", "detected_torn", "failed"}
        assert payload["silent_divergences"] == 0
        assert payload["ok"] is True


class TestCli:
    def test_campaign_mode(self, capsys, tmp_path):
        out = tmp_path / "campaign.json"
        code = main(["--campaign", "--executor", "ckks",
                     "--injections", "4", "--seed", "2",
                     "--json", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "PASS" in captured
        payload = json.loads(out.read_text())
        assert payload["injections"] == 4 and payload["ok"]

    def test_requires_mode(self):
        with pytest.raises(SystemExit):
            main([])
