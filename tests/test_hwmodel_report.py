"""Tests for the cost-breakdown rendering."""

import pytest

from repro.hwmodel import lane_cost, our_network_cost
from repro.hwmodel.report import (
    network_breakdown,
    render_breakdown,
    vpu_breakdown,
)


class TestNetworkBreakdown:
    def test_totals_match_cost_model(self):
        """Mux + lane-attach + control rows must sum to the network cost
        (the table row adds only the separately-reported SRAM table)."""
        lines = network_breakdown(64)
        core = [l for l in lines if "table" not in l.name]
        area = sum(l.area_um2 for l in core)
        power = sum(l.power_mw for l in core)
        net = our_network_cost(64)
        assert area == pytest.approx(net.area_um2)
        assert power == pytest.approx(net.power_mw)

    def test_shift_stages_dominate_muxes(self):
        lines = {l.name: l for l in network_breakdown(64)}
        assert (lines["shift stages"].area_um2
                > lines["CG stages (DIT/DIF)"].area_um2)
        assert lines["shift stages"].count == 6
        assert lines["CG stages (DIT/DIF)"].count == 2

    def test_m4_merges_cg(self):
        lines = {l.name: l for l in network_breakdown(4)}
        assert lines["CG stages (DIT/DIF)"].count == 1


class TestVpuBreakdown:
    def test_multipliers_dominate(self):
        """Paper §V-B: the VPU is dominated by the arithmetic and the
        register files, not the network."""
        lines = {l.name: l for l in vpu_breakdown(64)}
        mult = lines["Barrett modular multipliers"].area_um2
        net = lines["inter-lane network (all stages)"].area_um2
        assert mult > 10 * net / 2.5  # multipliers far above the network
        total = sum(l.area_um2 for l in vpu_breakdown(64))
        assert net / total < 0.05  # network under 5% of the VPU

    def test_lane_components_sum(self):
        lines = {l.name: l for l in vpu_breakdown(64)}
        per_lane = (lines["Barrett modular multipliers"].area_um2
                    + lines["modular adders/subtractors"].area_um2
                    + lines["register files (2R1W)"].area_um2) / 64
        assert per_lane == pytest.approx(lane_cost().area_um2)


class TestRendering:
    def test_render_contains_rows_and_total(self):
        text = render_breakdown(network_breakdown(64), title="network m=64")
        assert "network m=64" in text
        assert "shift stages" in text
        assert "total" in text
        # Percentages present and formatted.
        assert "%" in text

    def test_render_without_title(self):
        text = render_breakdown(vpu_breakdown(16))
        assert text.startswith("component") or "component" in text
