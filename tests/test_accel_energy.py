"""Tests for scheduled-operation energy accounting."""

import pytest

from repro.accel import Accelerator


class TestOperationEnergy:
    def setup_method(self):
        self.acc = Accelerator(num_vpus=8, lanes=64)

    def test_positive_and_ordered(self):
        hadd = self.acc.operation_energy_nj(
            [self.acc.schedule_elementwise(4096, 6)])
        hrot = self.acc.operation_energy_nj(self.acc.schedule_hrot(4096, 5))
        hmult = self.acc.operation_energy_nj(self.acc.schedule_hmult(4096, 5))
        assert 0 < hadd < hrot
        assert hrot < hmult * 1.5

    def test_scales_with_n(self):
        small = self.acc.operation_energy_nj(self.acc.schedule_hrot(1024, 3))
        large = self.acc.operation_energy_nj(self.acc.schedule_hrot(4096, 3))
        assert large > small

    def test_magnitude_sane(self):
        """An HMult at N=4096 should land in the tens-of-uJ range — the
        order of magnitude published FHE-accelerator papers report."""
        hmult = self.acc.operation_energy_nj(self.acc.schedule_hmult(4096, 5))
        assert 1e2 < hmult < 1e6  # 0.1 uJ .. 1 mJ window

    def test_idle_floor_counts(self):
        """An unbalanced schedule (1 kernel on 8 VPUs) still pays the
        idle floor on the other seven."""
        report = self.acc.schedule_ntt(4096, limbs=1, polys=1)
        energy = self.acc.operation_energy_nj([report])
        busy_only = (report.cycles_per_kernel
                     * self.acc.cost().power_mw / 8) / 1e3
        assert energy > busy_only * 0.5


class TestHoistedSchedule:
    def test_hoisting_beats_individual(self):
        acc = Accelerator(num_vpus=8, lanes=64)
        individual = 4 * Accelerator.total_makespan(acc.schedule_hrot(4096, 5))
        hoisted = Accelerator.total_makespan(
            acc.schedule_hrot_hoisted(4096, 5, 4))
        assert hoisted < individual
        # One rotation hoisted ~ one plain rotation (no loop to amortize).
        single = Accelerator.total_makespan(
            acc.schedule_hrot_hoisted(4096, 5, 1))
        plain = Accelerator.total_makespan(acc.schedule_hrot(4096, 5))
        assert single < 2 * plain

    def test_validation(self):
        acc = Accelerator(num_vpus=8, lanes=64)
        with pytest.raises(ValueError):
            acc.schedule_hrot_hoisted(4096, 5, 0)
