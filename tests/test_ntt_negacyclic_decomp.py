"""Tests for the negacyclic NTT wrapper and multi-dimensional decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import find_ntt_prime
from repro.ntt import (
    NegacyclicNtt,
    choose_dimensions,
    naive_negacyclic_poly_mul,
    naive_ntt,
    negacyclic_poly_mul,
    ntt_four_step,
    ntt_multidim,
)
from repro.ntt.decomposition import ntt_multidim_fast
from repro.ntt.tables import get_tables

Q = 998244353


def rand_poly(n, q=Q, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, q, size=n, dtype=np.uint64)


class TestNegacyclic:
    @pytest.mark.parametrize("n", [4, 16, 256, 2048])
    def test_roundtrip_natural(self, n):
        ntt = NegacyclicNtt(n, Q)
        x = rand_poly(n, seed=n)
        np.testing.assert_array_equal(ntt.inverse(ntt.forward(x)), x)

    @pytest.mark.parametrize("n", [4, 64, 1024])
    def test_roundtrip_bitrev(self, n):
        ntt = NegacyclicNtt(n, Q)
        x = rand_poly(n, seed=n + 1)
        np.testing.assert_array_equal(ntt.inverse_bitrev(ntt.forward_bitrev(x)), x)

    def test_orders_consistent(self):
        n = 64
        ntt = NegacyclicNtt(n, Q)
        x = rand_poly(n, seed=5)
        nat = ntt.forward(x)
        rev = ntt.forward_bitrev(x)
        np.testing.assert_array_equal(nat[ntt.tables.bitrev], rev)

    def test_forward_evaluates_at_odd_psi_powers(self):
        """Natural-order slot i must hold p(psi^(2i+1)): the property the
        automorphism layer depends on."""
        n = 16
        ntt = NegacyclicNtt(n, Q)
        x = rand_poly(n, seed=6)
        values = ntt.forward(x)
        psi = ntt.tables.psi
        for i in range(n):
            point = pow(psi, 2 * i + 1, Q)
            expected = sum(int(x[j]) * pow(point, j, Q) for j in range(n)) % Q
            assert int(values[i]) == expected

    @pytest.mark.parametrize("n", [8, 64, 512])
    def test_poly_mul_matches_schoolbook(self, n):
        a = rand_poly(n, seed=7)
        b = rand_poly(n, seed=8)
        got = negacyclic_poly_mul(a, b, Q)
        expected = naive_negacyclic_poly_mul(
            [int(v) for v in a], [int(v) for v in b], Q
        )
        assert [int(v) for v in got] == expected

    def test_wide_modulus_scalar_path(self):
        q = find_ntt_prime(64, 60)
        n = 32
        ntt = NegacyclicNtt(n, q)
        rng = np.random.default_rng(4)
        x = np.array([int(v) for v in rng.integers(0, 1 << 59, size=n)], dtype=object)
        x = x % q
        got = ntt.inverse(ntt.forward(x))
        assert [int(v) for v in got] == [int(v) for v in x]

    def test_mul_shape_mismatch(self):
        with pytest.raises(ValueError):
            negacyclic_poly_mul(np.zeros(4, dtype=np.uint64),
                                np.zeros(8, dtype=np.uint64), Q)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=2**32))
    def test_mul_commutes_property(self, log_n, seed):
        n = 1 << log_n
        a = rand_poly(n, seed=seed)
        b = rand_poly(n, seed=seed + 1)
        ab = negacyclic_poly_mul(a, b, Q)
        ba = negacyclic_poly_mul(b, a, Q)
        np.testing.assert_array_equal(ab, ba)


class TestChooseDimensions:
    def test_paper_dimension_counts(self):
        """Table III context: m=64 gives 2 dims at N=2^10..2^12, 3 dims at
        2^14..2^18, 4 dims at 2^20."""
        m = 64
        assert len(choose_dimensions(2**10, m)) == 2
        assert len(choose_dimensions(2**12, m)) == 2
        assert len(choose_dimensions(2**14, m)) == 3
        assert len(choose_dimensions(2**18, m)) == 3
        assert len(choose_dimensions(2**20, m)) == 4

    def test_products_and_bounds(self):
        for log_n in range(1, 21):
            dims = choose_dimensions(1 << log_n, 64)
            assert int(np.prod(dims)) == 1 << log_n
            assert all(d <= 64 for d in dims)
            assert all(d >= 1 for d in dims)
            # All but the last are full-width.
            assert all(d == 64 for d in dims[:-1])

    def test_small_n(self):
        assert choose_dimensions(16, 64) == [16]
        assert choose_dimensions(64, 64) == [64]

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_dimensions(100, 64)
        with pytest.raises(ValueError):
            choose_dimensions(64, 3)


class TestMultidim:
    @pytest.mark.parametrize("n,n1", [(16, 4), (16, 2), (64, 8), (256, 16)])
    def test_four_step_matches_naive(self, n, n1):
        t = get_tables(n, Q)
        x = rand_poly(n, seed=n + n1).astype(object)
        got = ntt_four_step(x, n1, t.omega, Q)
        expected = naive_ntt([int(v) for v in x], t.omega, Q)
        assert [int(v) for v in got] == expected

    @pytest.mark.parametrize("dims", [[4, 4], [8, 2], [4, 4, 4], [2, 4, 8], [8, 8, 4]])
    def test_multidim_matches_naive(self, dims):
        n = int(np.prod(dims))
        t = get_tables(n, Q)
        x = rand_poly(n, seed=n).astype(object)
        got = ntt_multidim(x, dims, t.omega, Q)
        expected = naive_ntt([int(v) for v in x], t.omega, Q)
        assert [int(v) for v in got] == expected

    def test_multidim_fast_hardware_shape(self):
        n, m = 256, 16
        x = rand_poly(n, seed=1).astype(object)
        t = get_tables(n, Q)
        got = ntt_multidim_fast(x, m, n, Q)
        expected = naive_ntt([int(v) for v in x], t.omega, Q)
        assert [int(v) for v in got] == expected

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            ntt_multidim(np.zeros(16, dtype=object), [4, 8], 1, Q)
        with pytest.raises(ValueError):
            ntt_four_step(np.zeros(16, dtype=object), 3, 1, Q)
