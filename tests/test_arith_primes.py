"""Unit tests for prime search and root-of-unity machinery."""

import pytest

from repro.arith import (
    find_ntt_prime,
    find_ntt_primes,
    find_primitive_root,
    is_prime,
    nth_root_of_unity,
)


class TestIsPrime:
    def test_small_values(self):
        known = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
        for n in range(50):
            assert is_prime(n) == (n in known)

    def test_carmichael_numbers_rejected(self):
        for n in [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]:
            assert not is_prime(n)

    def test_large_known_primes(self):
        assert is_prime((1 << 61) - 1)  # Mersenne prime M61
        assert is_prime(998244353)
        assert is_prime(4611686018326724609)

    def test_large_composites(self):
        assert not is_prime((1 << 61) - 3)
        assert not is_prime(998244353 * 12289)


class TestPrimitiveRoot:
    @pytest.mark.parametrize("q", [3, 5, 7, 17, 257, 7681, 12289, 998244353])
    def test_generator_order(self, q):
        g = find_primitive_root(q)
        # g generates the full group: g^((q-1)/p) != 1 for each prime p | q-1
        n = q - 1
        f = set()
        m, d = n, 2
        while d * d <= m:
            while m % d == 0:
                f.add(d)
                m //= d
            d += 1
        if m > 1:
            f.add(m)
        assert all(pow(g, n // p, q) != 1 for p in f)

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            find_primitive_root(10)


class TestRootsOfUnity:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 1024, 4096])
    def test_root_order(self, n):
        q = find_ntt_prime(2 * n, 30)
        w = nth_root_of_unity(n, q)
        assert pow(w, n, q) == 1
        assert pow(w, n // 2, q) == q - 1  # primitive: w^(n/2) = -1

    def test_order_must_divide(self):
        with pytest.raises(ValueError):
            nth_root_of_unity(8, 23)  # 8 does not divide 22


class TestNttPrimeSearch:
    def test_congruence_and_width(self):
        for order, bits in [(2048, 30), (8192, 30), (2048, 60), (128, 20)]:
            q = find_ntt_prime(order, bits)
            assert is_prime(q)
            assert q % order == 1
            assert q.bit_length() == bits

    def test_distinct_primes(self):
        primes = find_ntt_primes(4096, 30, 5)
        assert len(set(primes)) == 5
        assert primes == sorted(primes, reverse=True)
        for q in primes:
            assert q % 4096 == 1 and is_prime(q)

    def test_rejects_non_power_of_two_order(self):
        with pytest.raises(ValueError):
            find_ntt_prime(100, 30)

    def test_rejects_too_few_bits(self):
        with pytest.raises(ValueError):
            find_ntt_prime(4096, 8)

    def test_standard_primes_found(self):
        # 998244353 = 119 * 2^23 + 1 is the classic NTT prime; make sure our
        # search space includes primes of its shape.
        q = find_ntt_prime(1 << 23, 30)
        assert q % (1 << 23) == 1
