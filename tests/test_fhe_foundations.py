"""Tests for the FHE substrates: params, RNS basis, polynomials, samplers,
and the canonical-embedding encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.encoding import CkksEncoder
from repro.fhe.params import CkksParams, toy_params
from repro.fhe.polynomial import RnsPoly
from repro.fhe.rns import RnsBasis, get_basis
from repro.fhe.sampling import sample_gaussian, sample_ternary, sample_uniform_poly


class TestParams:
    def test_primes_are_ntt_friendly(self):
        p = toy_params()
        for q in p.primes + (p.special_prime,):
            assert q % (2 * p.n) == 1

    def test_primes_distinct(self):
        p = toy_params()
        assert len(set(p.primes + (p.special_prime,))) == p.levels + 1

    def test_modulus_at_level(self):
        p = toy_params()
        assert p.modulus_at_level(0) == p.primes[0]
        assert p.modulus_at_level(1) == p.primes[0] * p.primes[1]
        with pytest.raises(ValueError):
            p.modulus_at_level(p.levels)

    def test_validation(self):
        with pytest.raises(ValueError):
            CkksParams(n=100)
        with pytest.raises(ValueError):
            CkksParams(n=256, scale_bits=40, prime_bits=30)
        with pytest.raises(ValueError):
            CkksParams(n=256, prime_bits=40)
        with pytest.raises(ValueError):
            CkksParams(n=256, levels=0)

    def test_slots(self):
        assert toy_params().slots == 128


class TestRnsBasis:
    def setup_method(self):
        p = toy_params()
        self.basis = get_basis(p.primes, p.special_prime)

    def test_idempotents(self):
        """B_i === delta_ij (mod q_j): the keyswitch gadget property."""
        b = self.basis
        for i in range(b.levels):
            for j in range(b.levels):
                assert int(b.idempotent_mod_chain[i][j]) == (1 if i == j else 0)

    def test_roundtrip(self):
        b = self.basis
        for value in [0, 1, 12345678901234567, b.big_q - 1]:
            level = b.levels - 1
            assert b.from_rns(b.to_rns(value % b.big_q, level), level) == value % b.big_q

    def test_partial_level_roundtrip(self):
        b = self.basis
        q01 = b.primes[0] * b.primes[1]
        value = q01 - 12345
        assert b.from_rns(b.to_rns(value, 1), 1) == value

    def test_centered(self):
        b = self.basis
        assert b.centered(b.to_rns(5, 0), 0) == 5
        assert b.centered(b.to_rns(b.primes[0] - 3, 0), 0) == -3

    def test_idempotent_prefix_property(self):
        """sum_i [x]_{q_i} B_i === x mod any level prefix: the reason one
        keyswitch key serves every level."""
        b = self.basis
        x = 987654321
        for level in range(b.levels):
            q_prod = 1
            for q in b.primes[:level + 1]:
                q_prod *= q
            total = sum(
                (x % b.primes[i]) * (b.big_q // b.primes[i])
                * pow(b.big_q // b.primes[i], -1, b.primes[i])
                for i in range(level + 1)
            )
            assert total % q_prod == x % q_prod

    def test_validation(self):
        with pytest.raises(ValueError):
            RnsBasis((7, 7), 11)
        with pytest.raises(ValueError):
            RnsBasis((7, 11), 7)


class TestRnsPoly:
    def setup_method(self):
        self.p = toy_params()
        self.rng = np.random.default_rng(0)

    def rand_poly(self, eval_domain=True):
        return sample_uniform_poly(self.p.n, self.p.primes, self.rng) \
            if eval_domain else \
            sample_uniform_poly(self.p.n, self.p.primes, self.rng).to_coeff()

    def test_add_sub_neg(self):
        a, b = self.rand_poly(), self.rand_poly()
        zero = (a + b) - b - a
        assert not zero.residues.any()
        zero2 = a + (-a)
        assert not zero2.residues.any()

    def test_mul_matches_schoolbook(self):
        from repro.ntt.reference import naive_negacyclic_poly_mul

        p = CkksParams(n=16, levels=2, scale_bits=20, prime_bits=28)
        rng = np.random.default_rng(1)
        a = sample_uniform_poly(p.n, p.primes, rng).to_coeff()
        b = sample_uniform_poly(p.n, p.primes, rng).to_coeff()
        prod = (a.to_eval() * b.to_eval()).to_coeff()
        for i, q in enumerate(p.primes):
            expected = naive_negacyclic_poly_mul(
                [int(v) for v in a.residues[i]],
                [int(v) for v in b.residues[i]], q)
            assert [int(v) for v in prod.residues[i]] == expected

    def test_domain_roundtrip(self):
        a = self.rand_poly()
        np.testing.assert_array_equal(a.to_coeff().to_eval().residues, a.residues)

    def test_mul_requires_eval(self):
        a = self.rand_poly(eval_domain=False)
        with pytest.raises(ValueError):
            a * a

    def test_compatibility_checks(self):
        a = self.rand_poly()
        b = a.limbs_prefix(1)
        with pytest.raises(ValueError):
            a + b
        with pytest.raises(ValueError):
            a + a.to_coeff()

    def test_automorphism_matches_coeff_domain(self):
        from repro.automorphism import apply_galois_coeffs

        a = self.rand_poly(eval_domain=False)
        k = 5
        via_eval = a.to_eval().automorphism(k).to_coeff()
        for i, q in enumerate(self.p.primes):
            expected = apply_galois_coeffs(a.residues[i], k, q)
            np.testing.assert_array_equal(via_eval.residues[i], expected)

    def test_centered_limb(self):
        a = self.rand_poly(eval_domain=False)
        lifted = a.centered_limb(0)
        q = self.p.primes[0]
        assert lifted.max() <= q // 2 and lifted.min() >= -(q // 2)
        np.testing.assert_array_equal(lifted % q, a.residues[0].astype(np.int64))

    def test_mul_scalar(self):
        a = self.rand_poly()
        doubled = a.mul_scalar(2)
        np.testing.assert_array_equal((a + a).residues, doubled.residues)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RnsPoly(np.zeros((2, 8), dtype=np.uint64), (17,), True)


class TestSampling:
    def test_ternary_range(self):
        s = sample_ternary(4096, np.random.default_rng(0))
        assert set(np.unique(s)) <= {-1, 0, 1}

    def test_ternary_hamming_weight(self):
        s = sample_ternary(1024, np.random.default_rng(0), hamming_weight=64)
        assert np.count_nonzero(s) == 64
        with pytest.raises(ValueError):
            sample_ternary(16, np.random.default_rng(0), hamming_weight=17)

    def test_gaussian_moments(self):
        e = sample_gaussian(1 << 16, 3.2, np.random.default_rng(0))
        assert abs(e.mean()) < 0.1
        assert abs(e.std() - 3.2) < 0.2

    def test_gaussian_validation(self):
        with pytest.raises(ValueError):
            sample_gaussian(16, -1.0, np.random.default_rng(0))

    def test_uniform_poly(self):
        p = toy_params()
        poly = sample_uniform_poly(p.n, p.primes, np.random.default_rng(0))
        for i, q in enumerate(p.primes):
            assert poly.residues[i].max() < q


class TestEncoder:
    def setup_method(self):
        self.p = toy_params()
        self.enc = CkksEncoder(self.p)

    def test_embed_project_roundtrip(self):
        rng = np.random.default_rng(0)
        z = rng.uniform(-1, 1, self.p.slots) + 1j * rng.uniform(-1, 1, self.p.slots)
        back = self.enc.project(self.enc.embed(z))
        np.testing.assert_allclose(back, z, atol=1e-9)

    def test_embedding_is_real(self):
        z = np.exp(2j * np.pi * np.arange(self.p.slots) / self.p.slots)
        coeffs = self.enc.embed(z)
        assert coeffs.dtype == np.float64

    def test_encode_decode(self):
        rng = np.random.default_rng(1)
        z = rng.uniform(-1, 1, self.p.slots) + 1j * rng.uniform(-1, 1, self.p.slots)
        poly, scale = self.enc.encode(z)
        back = self.enc.decode(poly, scale)
        np.testing.assert_allclose(back, z, atol=1e-4)

    def test_encode_is_additive(self):
        rng = np.random.default_rng(2)
        z1 = rng.uniform(-1, 1, self.p.slots)
        z2 = rng.uniform(-1, 1, self.p.slots)
        p1, s = self.enc.encode(z1)
        p2, _ = self.enc.encode(z2)
        back = self.enc.decode(p1 + p2, s)
        np.testing.assert_allclose(back.real, z1 + z2, atol=1e-4)

    def test_slot_ordering_enables_rotation(self):
        """Applying X -> X^5 to the plaintext must rotate slots by one —
        the property HRot is built on."""
        rng = np.random.default_rng(3)
        z = rng.uniform(-1, 1, self.p.slots) + 1j * rng.uniform(-1, 1, self.p.slots)
        poly, scale = self.enc.encode(z)
        rotated = poly.automorphism(5)
        back = self.enc.decode(rotated, scale)
        np.testing.assert_allclose(back, np.roll(z, -1), atol=1e-4)

    def test_conjugation_galois_element(self):
        rng = np.random.default_rng(4)
        z = rng.uniform(-1, 1, self.p.slots) + 1j * rng.uniform(-1, 1, self.p.slots)
        poly, scale = self.enc.encode(z)
        conj = poly.automorphism(2 * self.p.n - 1)
        np.testing.assert_allclose(self.enc.decode(conj, scale), np.conj(z),
                                   atol=1e-4)

    def test_wrong_sizes(self):
        with pytest.raises(ValueError):
            self.enc.embed(np.zeros(3))
        with pytest.raises(ValueError):
            self.enc.project(np.zeros(3))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        z = rng.uniform(-1, 1, self.p.slots) + 1j * rng.uniform(-1, 1, self.p.slots)
        np.testing.assert_allclose(self.enc.project(self.enc.embed(z)), z,
                                   atol=1e-9)
