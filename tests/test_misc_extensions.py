"""Tests for assorted extensions: twiddle storage, negative rotations,
and the scheduler-vs-functional-pool cross-check."""

import numpy as np
import pytest

from repro.accel import Accelerator
from repro.accel.parallel import ParallelVpuPool
from repro.fhe.ckks import CkksContext
from repro.fhe.params import toy_params
from repro.hwmodel.network_cost import twiddle_storage_cost
from repro.perf.cycles import ntt_cycle_model

Q = 998244353


class TestTwiddleStorage:
    def test_grows_with_n(self):
        small = twiddle_storage_cost(1024, 64)
        large = twiddle_storage_cost(4096, 64)
        assert large.area_um2 > small.area_um2

    def test_reasonable_relative_to_network(self):
        from repro.hwmodel import our_network_cost

        tw = twiddle_storage_cost(4096, 64)
        net = our_network_cost(64)
        # Twiddles for N=4096 are a few times the network — the reason
        # every accelerator shares them across VPUs.
        assert 0.1 * net.area_um2 < tw.area_um2 < 10 * net.area_um2

    def test_validation(self):
        with pytest.raises(ValueError):
            twiddle_storage_cost(1000, 64)


class TestNegativeRotation:
    def test_rotate_by_negative_steps(self):
        ctx = CkksContext(toy_params(), seed=61)
        slots = ctx.params.slots
        ctx.generate_galois_keys([1, slots - 1])
        z = np.random.default_rng(0).uniform(-1, 1, slots)
        ct = ctx.encrypt(z)
        # -1 === slots-1 (mod slots): a right rotation.
        out = ctx.decrypt(ctx.rotate(ct, -1))
        np.testing.assert_allclose(out.real, np.roll(z, 1), atol=2e-3)

    def test_left_then_right_is_identity(self):
        ctx = CkksContext(toy_params(), seed=62)
        slots = ctx.params.slots
        ctx.generate_galois_keys([1, slots - 1])
        z = np.random.default_rng(1).uniform(-1, 1, slots)
        out = ctx.decrypt(ctx.rotate(ctx.rotate(ctx.encrypt(z), 1), -1))
        np.testing.assert_allclose(out.real, z, atol=3e-3)


class TestSchedulerVsFunctionalPool:
    def test_balance_predictions_agree(self):
        """The analytic scheduler and the functional pool must agree on
        load balance for a divisible batch."""
        m, n, vpus, batch = 16, 256, 4, 8
        acc = Accelerator(num_vpus=vpus, lanes=m)
        report = acc.schedule_ntt(n, limbs=batch, polys=1)
        pool = ParallelVpuPool(num_vpus=vpus, m=m, q=Q)
        data = np.random.default_rng(0).integers(0, Q, (batch, n),
                                                 dtype=np.uint64)
        _, run = pool.run_ntt_batch(data, n)
        assert report.vpu_load_balance == run.speedup / vpus == 1.0

    def test_cycle_orders_of_magnitude_agree(self):
        """The scheduler's per-kernel cycles (analytic) and the executed
        program's instruction count agree up to the documented
        load/store overlap."""
        m, n = 16, 256
        model = ntt_cycle_model(n, m)
        pool = ParallelVpuPool(num_vpus=1, m=m, q=Q)
        data = np.random.default_rng(1).integers(0, Q, (1, n), dtype=np.uint64)
        _, run = pool.run_ntt_batch(data, n)
        executed = run.per_vpu_cycles[0]
        # Executed includes loads/stores the streaming SRAM overlaps.
        assert model.total_cycles <= executed <= 3 * model.total_cycles
