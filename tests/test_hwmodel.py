"""Tests for the 7 nm area/power models, pinned to paper Tables II/IV."""

import pytest

from repro.baselines import (
    ark_network_cost,
    bts_network_cost,
    f1_network_cost,
    sharp_network_cost,
)
from repro.hwmodel import (
    CostReport,
    SramMacro,
    barrett_multiplier_cost,
    lane_cost,
    modular_adder_cost,
    multistage_network_cost,
    mux_stage_cost,
    our_network_cost,
    register_file_cost,
    vpu_cost,
)
from repro.hwmodel.network_cost import cg_stage_count, control_table_cost

# Paper Table IV: our inter-lane network, (area um^2, power mW).
TABLE_IV = {
    4: (208.99, 0.59),
    8: (509.45, 1.38),
    16: (1180.83, 3.13),
    32: (2664.50, 7.02),
    64: (5913.62, 15.59),
    128: (12975.47, 34.28),
    256: (28226.38, 75.02),
}

# Paper Table II: (network area, VPU area, network power, VPU power).
TABLE_II = {
    "F1": (55616.42, 300306.61, 93.50, 842.12),
    "BTS": (19405.16, 264095.35, 45.13, 793.75),
    "ARK": (9480.50, 254170.69, 46.35, 794.97),
    "SHARP": (44453.51, 289143.70, 44.04, 792.66),
    "Ours": (5913.62, 250603.81, 15.59, 764.21),
}

BASELINE_COSTS = {
    "F1": f1_network_cost,
    "BTS": bts_network_cost,
    "ARK": ark_network_cost,
    "SHARP": sharp_network_cost,
    "Ours": our_network_cost,
}


class TestCostReport:
    def test_add(self):
        c = CostReport(1.0, 2.0, "a") + CostReport(3.0, 4.0, "b")
        assert c.area_um2 == 4.0 and c.power_mw == 6.0
        assert c.label == "a + b"

    def test_mul(self):
        c = 3 * CostReport(1.0, 2.0)
        assert c.area_um2 == 3.0 and c.power_mw == 6.0

    def test_scaled_power(self):
        c = CostReport(1.0, 2.0).scaled_power(1.5)
        assert c.area_um2 == 1.0 and c.power_mw == 3.0

    def test_ratio(self):
        ra, rp = CostReport(4.0, 6.0).ratio_to(CostReport(2.0, 3.0))
        assert ra == 2.0 and rp == 2.0


class TestComponents:
    def test_all_positive(self):
        for c in [mux_stage_cost(64), barrett_multiplier_cost(),
                  modular_adder_cost(), register_file_cost(), lane_cost()]:
            assert c.area_um2 > 0 and c.power_mw > 0

    def test_lane_partition(self):
        parts = (barrett_multiplier_cost() + modular_adder_cost()
                 + register_file_cost())
        assert lane_cost().area_um2 == pytest.approx(parts.area_um2)
        assert lane_cost().power_mw == pytest.approx(parts.power_mw)

    def test_multiplier_dominates_lane(self):
        assert barrett_multiplier_cost().area_um2 > register_file_cost().area_um2
        assert register_file_cost().area_um2 > modular_adder_cost().area_um2

    def test_scaling_with_width(self):
        # Multiplier area is quadratic in width; adder linear.
        assert barrett_multiplier_cost(32).area_um2 == pytest.approx(
            barrett_multiplier_cost(64).area_um2 / 4
        )
        assert modular_adder_cost(32).area_um2 == pytest.approx(
            modular_adder_cost(64).area_um2 / 2
        )


class TestSram:
    def test_validation(self):
        with pytest.raises(ValueError):
            SramMacro(bits=0, io_bits=8)
        with pytest.raises(ValueError):
            SramMacro(bits=8, io_bits=8, duty=1.5)

    def test_area_grows_with_bits_and_io(self):
        small = SramMacro(bits=1024, io_bits=64)
        big = SramMacro(bits=4096, io_bits=64)
        wide = SramMacro(bits=1024, io_bits=256)
        assert big.area_um2 > small.area_um2
        assert wide.area_um2 > small.area_um2

    def test_power_scales_with_duty(self):
        full = SramMacro(bits=1024, io_bits=64, duty=1.0)
        half = SramMacro(bits=1024, io_bits=64, duty=0.5)
        assert half.power_mw < full.power_mw


class TestNetworkModel:
    def test_cg_stage_merging_at_m4(self):
        """Paper §III-B: at m=4 the DIT and DIF CG stages coincide."""
        assert cg_stage_count(4) == 1
        assert cg_stage_count(8) == 2
        assert cg_stage_count(64) == 2

    def test_multistage_validation(self):
        with pytest.raises(ValueError):
            multistage_network_cost(63, 4)
        with pytest.raises(ValueError):
            multistage_network_cost(64, 0)

    def test_control_table_is_small(self):
        """Paper: ~2 kbit at m=64, 'a small area cost' — under 10% of the
        network."""
        table = control_table_cost(64)
        net = our_network_cost(64)
        assert table.area_um2 < 0.1 * net.area_um2

    @pytest.mark.parametrize("m", sorted(TABLE_IV))
    def test_table4_regression(self, m):
        """Our network model must stay within 10% of every Table IV row."""
        area, power = TABLE_IV[m]
        c = our_network_cost(m)
        assert c.area_um2 == pytest.approx(area, rel=0.10)
        assert c.power_mw == pytest.approx(power, rel=0.10)

    def test_table4_superlinear_scaling(self):
        """Paper §V-D: ~2.27x area and ~2.24x power per lane doubling."""
        a4, p4 = our_network_cost(4).area_um2, our_network_cost(4).power_mw
        a256, p256 = our_network_cost(256).area_um2, our_network_cost(256).power_mw
        area_per_doubling = (a256 / a4) ** (1 / 6)
        power_per_doubling = (p256 / p4) ** (1 / 6)
        assert 2.1 < area_per_doubling < 2.4
        assert 2.1 < power_per_doubling < 2.4


class TestTable2:
    @pytest.mark.parametrize("design", sorted(TABLE_II))
    def test_network_values(self, design):
        net_area, _, net_power, _ = TABLE_II[design]
        c = BASELINE_COSTS[design](64)
        assert c.area_um2 == pytest.approx(net_area, rel=0.12)
        assert c.power_mw == pytest.approx(net_power, rel=0.12)

    @pytest.mark.parametrize("design", sorted(TABLE_II))
    def test_vpu_values(self, design):
        _, vpu_area, _, vpu_power = TABLE_II[design]
        v = vpu_cost(64, BASELINE_COSTS[design](64))
        assert v.area_um2 == pytest.approx(vpu_area, rel=0.05)
        assert v.power_mw == pytest.approx(vpu_power, rel=0.05)

    def test_headline_ratios(self):
        """The abstract's claim: up to 9.4x area and 6.0x power savings for
        the network; up to 1.2x area and 1.1x power for the whole VPU."""
        ours = our_network_cost(64)
        f1 = f1_network_cost(64)
        ra, rp = f1.ratio_to(ours)
        assert ra == pytest.approx(9.4, rel=0.10)
        assert rp == pytest.approx(6.0, rel=0.10)
        va, vp = vpu_cost(64, f1).ratio_to(vpu_cost(64, ours))
        assert va == pytest.approx(1.20, rel=0.05)
        assert vp == pytest.approx(1.10, rel=0.05)

    def test_ordering_preserved(self):
        """Area ordering: ours < ARK < BTS < SHARP < F1 (Table II)."""
        areas = {d: BASELINE_COSTS[d](64).area_um2 for d in BASELINE_COSTS}
        assert (areas["Ours"] < areas["ARK"] < areas["BTS"]
                < areas["SHARP"] < areas["F1"])

    def test_ours_always_cheapest_in_power(self):
        powers = {d: BASELINE_COSTS[d](64).power_mw for d in BASELINE_COSTS}
        assert min(powers, key=powers.get) == "Ours"
