"""Tests for homomorphic linear transforms and polynomial evaluation —
the building blocks of CKKS bootstrapping (paper §II-A)."""

import numpy as np
import pytest

from repro.fhe.ckks import CkksContext
from repro.fhe.linear import (
    encrypted_matvec,
    encrypted_matvec_bsgs,
    matrix_diagonal,
    required_rotations,
)
from repro.fhe.params import CkksParams
from repro.fhe.polyeval import evaluate_horner, evaluate_power_basis

DIM = 8


@pytest.fixture(scope="module")
def ctx():
    context = CkksContext(
        CkksParams(n=256, levels=4, scale_bits=27, prime_bits=28), seed=13)
    rotations = sorted(set(required_rotations(DIM)
                           + required_rotations(DIM, bsgs=True)))
    context.generate_galois_keys(rotations)
    return context


def encrypt_tiled(ctx, x):
    return ctx.encrypt(np.tile(x, ctx.params.slots // len(x)))


class TestDiagonals:
    def test_diagonal_extraction(self):
        w = np.arange(16).reshape(4, 4)
        np.testing.assert_array_equal(matrix_diagonal(w, 0), [0, 5, 10, 15])
        np.testing.assert_array_equal(matrix_diagonal(w, 1), [1, 6, 11, 12])

    def test_required_rotations(self):
        assert required_rotations(8) == list(range(1, 8))
        bsgs = required_rotations(16, bsgs=True)
        assert len(bsgs) < 15  # fewer keys than the plain method
        assert all(r < 16 for r in bsgs)


class TestMatvec:
    def test_plain_method(self, ctx):
        rng = np.random.default_rng(0)
        w = rng.normal(0, 0.4, (DIM, DIM))
        x = rng.uniform(-1, 1, DIM)
        out = ctx.decrypt(encrypted_matvec(ctx, encrypt_tiled(ctx, x), w))
        np.testing.assert_allclose(out[:DIM].real, w @ x, atol=2e-3)

    def test_bsgs_method(self, ctx):
        rng = np.random.default_rng(1)
        w = rng.normal(0, 0.4, (DIM, DIM))
        x = rng.uniform(-1, 1, DIM)
        out = ctx.decrypt(encrypted_matvec_bsgs(ctx, encrypt_tiled(ctx, x), w))
        np.testing.assert_allclose(out[:DIM].real, w @ x, atol=2e-3)

    def test_methods_agree(self, ctx):
        rng = np.random.default_rng(2)
        w = rng.normal(0, 0.4, (DIM, DIM))
        x = rng.uniform(-1, 1, DIM)
        ct = encrypt_tiled(ctx, x)
        plain = ctx.decrypt(encrypted_matvec(ctx, ct, w))[:DIM]
        bsgs = ctx.decrypt(encrypted_matvec_bsgs(ctx, ct, w))[:DIM]
        np.testing.assert_allclose(plain, bsgs, atol=2e-3)

    def test_sparse_matrix_skips_diagonals(self, ctx):
        w = np.diag(np.full(DIM, 0.5))  # only diagonal 0
        x = np.random.default_rng(3).uniform(-1, 1, DIM)
        out = ctx.decrypt(encrypted_matvec(ctx, encrypt_tiled(ctx, x), w))
        np.testing.assert_allclose(out[:DIM].real, 0.5 * x, atol=1e-3)

    def test_identity(self, ctx):
        x = np.random.default_rng(4).uniform(-1, 1, DIM)
        out = ctx.decrypt(encrypted_matvec(ctx, encrypt_tiled(ctx, x),
                                           np.eye(DIM)))
        np.testing.assert_allclose(out[:DIM].real, x, atol=1e-3)

    def test_zero_matrix(self, ctx):
        x = np.random.default_rng(5).uniform(-1, 1, DIM)
        out = ctx.decrypt(encrypted_matvec(ctx, encrypt_tiled(ctx, x),
                                           np.zeros((DIM, DIM))))
        np.testing.assert_allclose(out[:DIM].real, 0, atol=1e-3)

    def test_non_square_rejected(self, ctx):
        with pytest.raises(ValueError):
            encrypted_matvec(ctx, encrypt_tiled(ctx, np.zeros(DIM)),
                             np.zeros((4, 8)))


class TestPolyEval:
    def setup_method(self):
        self.rng = np.random.default_rng(7)
        self.z = self.rng.uniform(-0.9, 0.9, 128)

    def fresh_ctx(self, levels):
        return CkksContext(CkksParams(n=256, levels=levels, scale_bits=27,
                                      prime_bits=28), seed=17)

    def check(self, evaluator, coeffs, levels, atol=2e-3):
        ctx = self.fresh_ctx(levels)
        out = ctx.decrypt(evaluator(ctx, ctx.encrypt(self.z), coeffs))
        expected = sum(c * self.z ** k for k, c in enumerate(coeffs))
        np.testing.assert_allclose(out.real, expected, atol=atol)

    def test_horner_linear(self):
        self.check(evaluate_horner, [0.3, 0.7], levels=3)

    def test_horner_quadratic(self):
        self.check(evaluate_horner, [0.5, -1.2, 0.7], levels=4)

    @pytest.mark.parametrize("coeffs", [
        [0.25, 0.5, -0.3, 0.8],                       # degree 3
        [0.3, -0.5, 0.2, 0.1, -0.25],                 # degree 4
    ])
    def test_power_basis_shallow(self, coeffs):
        self.check(evaluate_power_basis, coeffs, levels=4)

    def test_power_basis_degree_seven(self):
        """log-depth evaluation: degree 7 on a 5-level chain (Horner
        would need 7 levels)."""
        coeffs = [0.1, -0.2, 0.3, -0.15, 0.05, 0.21, -0.12, 0.08]
        self.check(evaluate_power_basis, coeffs, levels=5)

    def test_methods_agree(self):
        coeffs = [0.2, -0.4, 0.6]
        ctx = self.fresh_ctx(4)
        ct = ctx.encrypt(self.z)
        h = ctx.decrypt(evaluate_horner(ctx, ct, coeffs))
        p = ctx.decrypt(evaluate_power_basis(ctx, ct, coeffs))
        np.testing.assert_allclose(h, p, atol=3e-3)

    def test_sigmoid_approximation(self):
        """A realistic activation: degree-3 sigmoid approximation
        (the private-inference workload shape)."""
        coeffs = [0.5, 0.25, 0.0, -1.0 / 48.0]
        ctx = self.fresh_ctx(4)
        out = ctx.decrypt(evaluate_power_basis(ctx, ctx.encrypt(self.z),
                                               coeffs)).real
        sigmoid = 1 / (1 + np.exp(-self.z))
        assert np.abs(out - sigmoid).max() < 0.05  # approximation error

    def test_empty_coeffs_rejected(self):
        ctx = self.fresh_ctx(3)
        with pytest.raises(ValueError):
            evaluate_horner(ctx, ctx.encrypt(self.z), [])
        with pytest.raises(ValueError):
            evaluate_power_basis(ctx, ctx.encrypt(self.z), [])
