"""Tests for the Stockham autosort NTT and technology-node scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwmodel.components import CostReport
from repro.hwmodel.nodescale import (
    area_scale_factor,
    power_scale_factor,
    scale_to_node,
)
from repro.ntt import naive_ntt
from repro.ntt.stockham import stockham_forward
from repro.ntt.tables import get_tables

Q = 998244353


class TestStockham:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 256, 1024])
    def test_matches_naive_in_natural_order(self, n):
        """The autosort property: natural order in AND out, no
        bit-reversal anywhere."""
        t = get_tables(n, Q)
        x = np.random.default_rng(n).integers(0, Q, n, dtype=np.uint64)
        got = [int(v) for v in stockham_forward(x, t)]
        assert got == naive_ntt([int(v) for v in x], t.omega, Q)

    def test_differs_from_cg_organization(self):
        """Stockham's output is natural; CG/DIF's is bit-reversed — the
        design-space contrast that motivates the paper's CG choice."""
        from repro.ntt import bit_reverse_permute, cg_dif_ntt

        n = 16
        t = get_tables(n, Q)
        x = np.random.default_rng(1).integers(0, Q, n, dtype=np.uint64)
        stockham = stockham_forward(x, t)
        cg = np.array(cg_dif_ntt([int(v) for v in x], t), dtype=np.uint64)
        assert not np.array_equal(stockham, cg)
        np.testing.assert_array_equal(bit_reverse_permute(stockham),
                                      cg)

    def test_validation(self):
        t = get_tables(16, Q)
        with pytest.raises(ValueError):
            stockham_forward(np.zeros(8, dtype=np.uint64), t)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2**31))
    def test_linearity_property(self, log_n, seed):
        n = 1 << log_n
        t = get_tables(n, Q)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, Q, n, dtype=np.uint64)
        b = rng.integers(0, Q, n, dtype=np.uint64)
        fa = stockham_forward(a, t)
        fb = stockham_forward(b, t)
        fab = stockham_forward((a + b) % np.uint64(Q), t)
        np.testing.assert_array_equal(fab, (fa + fb) % np.uint64(Q))


class TestNodeScaling:
    def test_14_to_7_shrinks(self):
        assert area_scale_factor(14, 7) == pytest.approx(28.9 / 91.2)
        assert power_scale_factor(14, 7) == pytest.approx(1 / 1.75)

    def test_identity(self):
        assert area_scale_factor(7, 7) == 1.0
        assert power_scale_factor(7, 7) == 1.0

    def test_scale_report(self):
        """The paper's F1 methodology: 14 nm numbers normalized to 7 nm."""
        f1_at_14nm = CostReport(100000.0, 100.0, "F1-ish unit")
        ported = scale_to_node(f1_at_14nm, from_nm=14)
        assert ported.area_um2 == pytest.approx(100000 * 28.9 / 91.2)
        assert ported.power_mw == pytest.approx(100 / 1.75)
        assert "14nm -> 7nm" in ported.label

    def test_upscale_reverses(self):
        c = CostReport(1000.0, 10.0)
        roundtrip = scale_to_node(scale_to_node(c, 7, 14), 14, 7)
        assert roundtrip.area_um2 == pytest.approx(1000.0)
        assert roundtrip.power_mw == pytest.approx(10.0)

    def test_unknown_node(self):
        with pytest.raises(ValueError):
            area_scale_factor(5, 7)
        with pytest.raises(ValueError):
            power_scale_factor(14, 3)
