"""Chaos campaign and benchmark-artifact tests (smoke-sized)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import observe
from repro.obs.export import validate_envelope
from repro.serve.bench import run_bench
from repro.serve.chaos import (
    SERVE_SITES,
    ChaosInjector,
    ChaosSpec,
    default_chaos_specs,
    run_chaos_campaign,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")


class TestChaosInjector:
    def test_plans_are_deterministic(self):
        specs = default_chaos_specs()
        a = ChaosInjector(specs, seed=9)
        b = ChaosInjector(specs, seed=9)
        for request_id in range(200):
            assert a.plan_for(request_id) == b.plan_for(request_id)
        assert a.injections == b.injections
        assert a.by_site == b.by_site

    def test_plan_cached_not_recounted(self):
        injector = ChaosInjector(default_chaos_specs(), seed=1)
        for request_id in range(100):
            injector.plan_for(request_id)
        before = injector.injections
        for request_id in range(100):
            injector.plan_for(request_id)
        assert injector.injections == before

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ChaosSpec("regfile", rate=0.5)  # a kernel site, not a serve site
        with pytest.raises(ValueError):
            ChaosSpec(SERVE_SITES[0], rate=1.5)

    def test_obs_counts_injections(self):
        with observe() as obs:
            injector = ChaosInjector(default_chaos_specs(), seed=3)
            for request_id in range(100):
                injector.plan_for(request_id)
            if injector.injections:
                assert (obs.metrics.counters["serve.chaos.injections"]
                        == injector.injections)


class TestChaosCampaign:
    def test_smoke_campaign_holds_the_contract(self):
        outcome = run_chaos_campaign(requests=200, seed=4,
                                     min_injections=30)
        assert outcome.passed, outcome.violations
        assert outcome.resolved == outcome.submitted == 200
        assert outcome.hung == 0
        assert outcome.silent == 0
        assert outcome.untyped == 0
        assert outcome.injections >= 30
        # The mix actually exercised the machinery.
        assert outcome.affected > 0
        assert sum(outcome.outcomes.values()) == 200

    def test_campaign_is_deterministic(self):
        first = run_chaos_campaign(requests=150, seed=6, min_injections=1)
        second = run_chaos_campaign(requests=150, seed=6, min_injections=1)
        assert first.injections == second.injections
        assert first.by_site == second.by_site
        assert first.affected == second.affected

    def test_cli_chaos_exits_zero_on_pass(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve", "--chaos",
             "--requests", "150", "--min-injections", "20", "--seed", "2"],
            capture_output=True, text=True, env={"PYTHONPATH": SRC,
                                                 "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["passed"] is True
        assert report["hung"] == 0 and report["silent"] == 0

    def test_cli_chaos_exits_nonzero_on_infeasible_floor(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve", "--chaos",
             "--requests", "30", "--min-injections", "100000"],
            capture_output=True, text=True, env={"PYTHONPATH": SRC,
                                                 "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        assert report["passed"] is False


class TestBenchArtifact:
    def test_smoke_bench_envelope_and_fields(self):
        artifact = run_bench(requests=800, seed=1, workers=8, rate=2000.0,
                             time_scale=0.5)
        assert validate_envelope(artifact) == []
        assert artifact["bench"] == "serve"
        results = artifact["results"]
        assert results["requests"] == 800
        assert results["latency_s"]["p50"] <= results["latency_s"]["p99"]
        assert results["throughput_rps"] > 0
        for key in ("retried", "degraded", "shed", "timed_out"):
            assert key in results
        engine = artifact["engine"]
        assert engine["resolved"] == engine["submitted"] == 800

    def test_closed_loop_mode(self):
        artifact = run_bench(requests=400, seed=2, workers=8, rate=2000.0,
                             mode="closed", time_scale=0.5)
        assert validate_envelope(artifact) == []
        assert artifact["results"]["requests"] == 400
        assert artifact["config"]["mode"] == "closed"

    def test_validate_envelope_cli_roundtrip(self, tmp_path):
        artifact = run_bench(requests=200, seed=3, workers=4, rate=2000.0,
                             time_scale=0.25)
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(artifact))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve",
             "--validate-envelope", str(path)],
            capture_output=True, text=True, env={"PYTHONPATH": SRC,
                                                 "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stderr
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 0, "bench": ""}))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve",
             "--validate-envelope", str(bad)],
            capture_output=True, text=True, env={"PYTHONPATH": SRC,
                                                 "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 1
