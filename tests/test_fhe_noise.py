"""Tests for noise measurement and the budget estimator."""

import math

import numpy as np
import pytest

from repro.fhe.ckks import CkksContext
from repro.fhe.noise import (
    NoiseEstimator,
    estimate_fresh,
    measure_noise,
    noise_budget_bits,
)
from repro.fhe.params import toy_params


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(toy_params(), seed=21)


def rand(ctx, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(-1, 1, ctx.params.slots)


class TestMeasurement:
    def test_fresh_noise_is_small(self, ctx):
        z = rand(ctx, 0)
        bits = measure_noise(ctx, ctx.encrypt(z), z)
        # Fresh noise ~ error_std * poly norms: far below the scale.
        assert 0 < bits < ctx.params.scale_bits

    def test_budget_positive_and_consumed(self, ctx):
        z = rand(ctx, 1)
        ct = ctx.encrypt(z)
        fresh_budget = noise_budget_bits(ctx, ct, z)
        assert fresh_budget > 20
        ct2 = ctx.multiply(ct, ct)
        after = noise_budget_bits(ctx, ct2, z * z)
        assert after < fresh_budget  # multiplication consumed budget

    def test_add_grows_at_most_one_bit(self, ctx):
        z = rand(ctx, 2)
        ct = ctx.encrypt(z)
        n1 = measure_noise(ctx, ct, z)
        n2 = measure_noise(ctx, ctx.add(ct, ct), 2 * z)
        assert n2 <= n1 + 1.5

    def test_rotation_adds_keyswitch_noise(self, ctx):
        local = CkksContext(toy_params(), seed=5)
        local.generate_galois_keys([1])
        z = rand(local, 3)
        ct = local.encrypt(z)
        before = measure_noise(local, ct, z)
        after = measure_noise(local, local.rotate(ct, 1), np.roll(z, -1))
        assert after >= before - 1  # keyswitch never shrinks noise

    def test_decryption_correct_while_budget_positive(self, ctx):
        z = rand(ctx, 4)
        ct = ctx.encrypt(z)
        # Two multiplications on a 3-level toy chain.
        ct = ctx.multiply(ct, ctx.encrypt(z))
        ct = ctx.multiply(ct, ctx.encrypt(z))
        assert noise_budget_bits(ctx, ct, z ** 3) > 0
        np.testing.assert_allclose(ctx.decrypt(ct), z ** 3, atol=5e-2)


class TestEstimator:
    def test_fresh_bound_dominates_measurement(self, ctx):
        z = rand(ctx, 5)
        measured = measure_noise(ctx, ctx.encrypt(z), z)
        assert estimate_fresh(ctx) >= measured - 1

    def test_add_bound(self):
        est = NoiseEstimator(1024)
        assert est.add_bits(10, 12) == 13

    def test_multiply_bound_tracks_scale(self):
        est = NoiseEstimator(1024)
        small = est.multiply_bits(10, 10, 20, 20)
        large = est.multiply_bits(10, 10, 30, 30)
        assert large > small

    def test_rescale_bound_floors_at_rounding(self):
        est = NoiseEstimator(4096)
        floored = est.rescale_bits(5, 30)
        assert floored >= math.log2(math.sqrt(4096))

    def test_keyswitch_scales_with_digits(self):
        est = NoiseEstimator(4096)
        few = est.keyswitch_bits(2, 30, 30)
        many = est.keyswitch_bits(8, 30, 30)
        assert many > few

    def test_multiply_estimate_dominates_measured(self, ctx):
        z1, z2 = rand(ctx, 6), rand(ctx, 7)
        ct1, ct2 = ctx.encrypt(z1), ctx.encrypt(z2)
        n1 = measure_noise(ctx, ct1, z1)
        n2 = measure_noise(ctx, ct2, z2)
        product = ctx.multiply(ct1, ct2, rescale_after=False)
        measured = measure_noise(ctx, product, z1 * z2)
        est = NoiseEstimator(ctx.params.n, ctx.params.error_std)
        scale_bits = math.log2(ctx.params.scale)
        bound = est.multiply_bits(n1, n2, scale_bits, scale_bits)
        # Allow keyswitch noise on top of the tensor bound.
        ks = est.keyswitch_bits(ctx.params.levels, ctx.params.prime_bits,
                                ctx.params.prime_bits)
        assert measured <= max(bound, ks) + 6
