"""Tests for the program disassembler."""

from repro.core import (
    Butterfly,
    Load,
    NetworkConfig,
    NetworkPass,
    NttStage,
    Program,
    Store,
    VAdd,
    VMul,
    VMulScalar,
    VMulTwiddle,
    VSub,
)
from repro.automorphism import affine_controls
from repro.mapping import compile_ntt


class TestDisassembler:
    def test_every_instruction_formats(self):
        prog = Program([
            VAdd(2, 0, 1),
            VSub(3, 0, 1),
            VMul(4, 0, 1),
            VMulScalar(5, 0, 7),
            VMulTwiddle(6, 0, tuple(range(8))),
            Butterfly("dif", 7, 0, (1, 2, 3, 4)),
            NttStage("dit", 0, 0, (1, 2, 3, 4), group_size=4),
            NetworkPass(1, 0, NetworkConfig(cg="dif")),
            NetworkPass(1, 0, NetworkConfig(shift=affine_controls(8, 3)),
                        src_rot=2, src_window=8),
            Load(0, 5),
            Store(0, 6),
        ], label="demo")
        text = prog.disassemble()
        assert "demo" in text
        assert "r2 = r0 + r1" in text
        assert "r3 = r0 - r1" in text
        assert "r4 = r0 * r1" in text
        assert "r5 = r0 * 7" in text
        assert "tw[8]" in text
        assert "bfly.dif" in text
        assert "nttstage.dit" in text and "/g4" in text
        assert "net[cg=dif]" in text
        assert "diag(rot=2,w=8)" in text and "shift" in text
        assert "r0 = mem[5]" in text
        assert "mem[6] = r0" in text

    def test_limit_truncates(self):
        prog = compile_ntt(64, 8, 998244353)
        text = prog.disassemble(limit=5)
        assert "more" in text
        assert text.count("\n") <= 8

    def test_full_listing_length(self):
        prog = compile_ntt(64, 8, 998244353)
        text = prog.disassemble()
        # Header + one line per instruction.
        assert text.count("\n") == len(prog)
