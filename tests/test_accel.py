"""Tests for the accelerator top level (SRAM, NoC, scheduler)."""

import pytest

from repro.accel import Accelerator, OnChipSram, RingNoc


class TestSram:
    def test_bandwidth_cycles(self):
        sram = OnChipSram(banks=16, words_per_bank_per_cycle=64)
        assert sram.words_per_cycle == 1024
        assert sram.access_cycles(1024) == 1
        assert sram.access_cycles(1025) == 2
        assert sram.access_cycles(0) == 0

    def test_access_counters(self):
        sram = OnChipSram()
        sram.access_cycles(100)
        sram.access_cycles(50, write=True)
        assert sram.reads == 100 and sram.writes == 50

    def test_fits(self):
        sram = OnChipSram(capacity_bytes=1 << 20)
        assert sram.fits((1 << 20) // 8)
        assert not sram.fits((1 << 20) // 8 + 1)

    def test_cost_positive(self):
        c = OnChipSram().cost()
        assert c.area_um2 > 0 and c.power_mw > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnChipSram(capacity_bytes=0)
        with pytest.raises(ValueError):
            OnChipSram().access_cycles(-1)


class TestNoc:
    def test_hops(self):
        noc = RingNoc(nodes=4)
        assert noc.hops(0, 1) == 1
        assert noc.hops(3, 0) == 1
        assert noc.hops(1, 0) == 3  # unidirectional

    def test_transfer_pipelining(self):
        noc = RingNoc(nodes=4, link_words=8)
        # 64 words = 8 flits; 2 hops + 7 drain cycles.
        assert noc.transfer_cycles(0, 2, 64) == 9
        assert noc.transfer_cycles(0, 0, 64) == 0
        assert noc.transfer_cycles(0, 1, 0) == 0

    def test_counters(self):
        noc = RingNoc(nodes=4)
        noc.transfer_cycles(0, 2, 16)
        assert noc.total_flits == 2 and noc.total_hops == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            RingNoc(nodes=1)
        noc = RingNoc(nodes=4)
        with pytest.raises(ValueError):
            noc.hops(0, 4)
        with pytest.raises(ValueError):
            noc.transfer_cycles(0, 1, -1)


class TestScheduler:
    def setup_method(self):
        self.acc = Accelerator(num_vpus=8, lanes=64)

    def test_ntt_schedule_balances(self):
        r = self.acc.schedule_ntt(4096, limbs=6, polys=2)
        assert r.kernel_instances == 12
        assert sum(r.vpu_cycles) == 12 * r.cycles_per_kernel
        assert r.vpu_load_balance >= 0.5

    def test_perfect_balance_when_divisible(self):
        r = self.acc.schedule_ntt(4096, limbs=4, polys=2)
        assert r.vpu_load_balance == 1.0

    def test_automorphism_full_throughput(self):
        r = self.acc.schedule_automorphism(4096, limbs=6)
        assert r.cycles_per_kernel == 4096 // 64

    def test_keyswitch_composition(self):
        reports = self.acc.schedule_keyswitch(4096, level=5)
        assert len(reports) == 5
        assert all(r.makespan_cycles > 0 for r in reports)

    def test_hrot_includes_automorphism(self):
        reports = self.acc.schedule_hrot(4096, level=5)
        assert reports[0].operation.startswith("automorphism")
        assert Accelerator.total_makespan(reports) > 0

    def test_hmult_costs_more_than_hrot(self):
        hmult = Accelerator.total_makespan(self.acc.schedule_hmult(4096, 5))
        hrot = Accelerator.total_makespan(self.acc.schedule_hrot(4096, 5))
        assert hmult > hrot * 0.8  # same order; HMult adds tensor+rescale

    def test_more_vpus_reduce_makespan(self):
        small = Accelerator(num_vpus=2, lanes=64)
        big = Accelerator(num_vpus=16, lanes=64)
        ms_small = Accelerator.total_makespan(small.schedule_keyswitch(4096, 5))
        ms_big = Accelerator.total_makespan(big.schedule_keyswitch(4096, 5))
        assert ms_big < ms_small

    def test_cost_rollup(self):
        c = self.acc.cost()
        from repro.hwmodel import our_network_cost, vpu_cost

        vpus_only = vpu_cost(64, our_network_cost(64)).area_um2 * 8
        assert c.area_um2 > vpus_only  # SRAM + NoC add on top

    def test_validation(self):
        with pytest.raises(ValueError):
            Accelerator(num_vpus=0)
