"""Tests for static program analysis."""

import pytest

from repro.core import Load, NetworkConfig, NetworkPass, Program, Store, VAdd, VMul
from repro.mapping import compile_automorphism, compile_ntt, required_registers
from repro.mapping.analysis import analyze_program, render_analysis
from repro.automorphism import paper_sigma

Q = 998244353


class TestAnalyzeBasics:
    def test_small_program(self):
        prog = Program([
            Load(0, 3),
            VMul(1, 0, 0),
            VAdd(2, 1, 0),
            Store(2, 7),
        ])
        a = analyze_program(prog)
        assert a.instruction_count == 4
        assert a.by_type == {"Load": 1, "VMul": 1, "VAdd": 1, "Store": 1}
        assert a.registers_used == frozenset({0, 1, 2})
        assert a.register_pressure == 3
        assert a.memory_rows_read == frozenset({3})
        assert a.memory_rows_written == frozenset({7})
        assert a.multiplier_ops == 1 and a.adder_ops == 1

    def test_liveness_peak(self):
        # r0 and r1 both live across the VAdd; r2 short-lived.
        prog = Program([
            Load(0, 0),
            Load(1, 1),
            VAdd(2, 0, 1),
            VMul(3, 0, 1),
            Store(2, 2),
            Store(3, 3),
        ])
        a = analyze_program(prog)
        assert a.peak_live_registers >= 2

    def test_diagonal_window_counted(self):
        prog = Program([
            NetworkPass(1, 4, NetworkConfig(), src_rot=0, src_window=8),
        ])
        a = analyze_program(prog)
        assert a.register_pressure == 12  # window [4, 12)

    def test_empty_program(self):
        a = analyze_program(Program())
        assert a.instruction_count == 0
        assert a.register_pressure == 0
        assert a.memory_footprint_rows == 0


class TestCompiledPrograms:
    @pytest.mark.parametrize("m,n", [(8, 64), (16, 256), (8, 32)])
    def test_ntt_fits_declared_register_budget(self, m, n):
        """The compiler's required_registers() promise holds for every
        compiled program, square or ragged."""
        a = analyze_program(compile_ntt(n, m, Q))
        assert a.register_pressure <= required_registers(m)

    def test_ntt_memory_footprint(self):
        m, n = 8, 512
        a = analyze_program(compile_ntt(n, m, Q))
        assert a.memory_footprint_rows == n // m

    def test_automorphism_reads_and_writes_disjoint_regions(self):
        n, m = 512, 8
        a = analyze_program(compile_automorphism(paper_sigma(n, 3), m))
        assert a.memory_rows_read == frozenset(range(n // m))
        assert a.memory_rows_written == frozenset(range(n // m, 2 * n // m))
        assert a.network_passes == n // m

    def test_render(self):
        text = render_analysis(analyze_program(compile_ntt(64, 8, Q)),
                               label="ntt-64")
        assert "ntt-64" in text
        assert "register pressure" in text
        assert "NttStage" in text
