"""Integration: the CKKS stack executing its NTT and automorphism kernels
on the behavioral VPU model, bit-identical to the numpy backend."""

import numpy as np
import pytest

from repro.fhe.backend import NumpyBackend, VpuBackend, get_backend, use_backend
from repro.fhe.ckks import CkksContext
from repro.fhe.params import CkksParams

Q = 998244353


@pytest.fixture(scope="module")
def vpu_backend():
    return VpuBackend(m=16)


class TestKernelEquivalence:
    """Every backend kernel must agree with numpy bit-for-bit."""

    @pytest.mark.parametrize("n", [256, 512, 4096])  # 512: ragged at m=16
    def test_forward_ntt(self, vpu_backend, n):
        rng = np.random.default_rng(n)
        x = rng.integers(0, Q, n, dtype=np.uint64)
        np.testing.assert_array_equal(
            vpu_backend.forward_ntt(x, Q), NumpyBackend().forward_ntt(x, Q)
        )

    @pytest.mark.parametrize("n", [256, 512, 4096])
    def test_inverse_ntt(self, vpu_backend, n):
        rng = np.random.default_rng(n + 1)
        x = rng.integers(0, Q, n, dtype=np.uint64)
        np.testing.assert_array_equal(
            vpu_backend.inverse_ntt(x, Q), NumpyBackend().inverse_ntt(x, Q)
        )

    def test_ntt_roundtrip_on_vpu(self, vpu_backend):
        rng = np.random.default_rng(5)
        x = rng.integers(0, Q, 256, dtype=np.uint64)
        np.testing.assert_array_equal(
            vpu_backend.inverse_ntt(vpu_backend.forward_ntt(x, Q), Q), x
        )

    @pytest.mark.parametrize("k", [5, 25, 511])
    def test_automorphism(self, vpu_backend, k):
        n = 256
        rng = np.random.default_rng(k)
        x = rng.integers(0, Q, n, dtype=np.uint64)
        np.testing.assert_array_equal(
            vpu_backend.automorphism_eval(x, k, Q),
            NumpyBackend().automorphism_eval(x, k, Q),
        )

    def test_invocation_counter(self, vpu_backend):
        before = vpu_backend.kernel_invocations
        vpu_backend.forward_ntt(np.zeros(256, dtype=np.uint64), Q)
        assert vpu_backend.kernel_invocations == before + 1


class TestBackendSwitching:
    def test_default_follows_env(self):
        # The import-time default is REPRO_BACKEND (numpy when unset) —
        # CI runs the whole suite under each selectable backend.
        import os

        expected = (os.environ.get("REPRO_BACKEND", "numpy").strip().lower()
                    or "numpy")
        assert get_backend().name == expected

    def test_use_backend_restores(self, vpu_backend):
        default = get_backend().name
        with use_backend(vpu_backend):
            assert get_backend().name == "vpu"
        assert get_backend().name == default


class TestCkksOnVpu:
    """A full homomorphic pipeline where every NTT and automorphism runs
    through the mux-level VPU model."""

    def test_encrypted_pipeline_matches_numpy(self):
        params = CkksParams(n=256, levels=2, scale_bits=26, prime_bits=28)
        rng = np.random.default_rng(0)
        z1 = rng.uniform(-1, 1, params.slots)
        z2 = rng.uniform(-1, 1, params.slots)

        # numpy reference run
        ctx = CkksContext(params, seed=11)
        ctx.generate_galois_keys([1])
        ct = ctx.multiply(ctx.encrypt(z1), ctx.encrypt(z2))
        ct = ctx.rotate(ct, 1)
        reference = ctx.decrypt(ct)

        # identical run with all kernels on the VPU
        backend = VpuBackend(m=16)
        with use_backend(backend):
            ctx2 = CkksContext(params, seed=11)
            ctx2.generate_galois_keys([1])
            ct2 = ctx2.multiply(ctx2.encrypt(z1), ctx2.encrypt(z2))
            ct2 = ctx2.rotate(ct2, 1)
            # Bit-identical ciphertext polynomials...
            for p_ref, p_vpu in zip(ct.parts, ct2.parts):
                np.testing.assert_array_equal(p_ref.residues, p_vpu.residues)
            on_vpu = ctx2.decrypt(ct2)

        assert backend.kernel_invocations > 0
        np.testing.assert_array_equal(reference, on_vpu)
        np.testing.assert_allclose(on_vpu, np.roll(z1 * z2, -1), atol=3e-3)
