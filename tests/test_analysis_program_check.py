"""Interval verification of compiled VPU micro-programs, plus the
backend debug hook that runs it on every fresh compilation."""

import numpy as np
import pytest

from repro.analysis.program_check import (
    ProgramVerificationError,
    check_program,
)
from repro.arith.primes import find_ntt_prime
from repro.core.isa import Load, Program, Store, VMulTwiddle
from repro.fhe.backend import VpuBackend
from repro.mapping.ntt import compile_negacyclic_intt, compile_negacyclic_ntt

M = 16
N = 64
Q = find_ntt_prime(2 * N, 28)


class TestCheckProgram:
    @pytest.mark.parametrize("compiler", [compile_negacyclic_ntt,
                                          compile_negacyclic_intt])
    def test_compiled_ntt_programs_verify_clean(self, compiler):
        program = compiler(N, M, Q)
        report = check_program(program, q=Q, m=M)
        assert report.ok, [str(f) for f in report.findings]
        assert report.instructions == len(list(program))
        assert 0 < report.max_intermediate < Q * Q

    def test_unreduced_twiddle_flagged(self):
        program = Program(label="bad-twiddle", instructions=[
            Load(dst=0, addr=0),
            VMulTwiddle(dst=1, a=0, twiddles=tuple([Q] * M)),  # == q, not < q
            Store(src=1, addr=0),
        ])
        report = check_program(program, q=Q, m=M)
        assert not report.ok
        assert any(f.rule == "P003" for f in report.findings)

    def test_read_before_write_flagged(self):
        program = Program(label="uninit", instructions=[
            Store(src=3, addr=0),
        ])
        report = check_program(program, q=Q, m=M)
        assert any(f.rule == "P004" for f in report.findings)

    def test_wide_input_bound_overflows_product(self):
        """Lazy (< 2q) inputs into a twiddle product overflow the
        Barrett precondition when q is at the vectorized ceiling."""
        q = find_ntt_prime(2 * N, 31)
        program = Program(label="lazy-in", instructions=[
            Load(dst=0, addr=0),
            VMulTwiddle(dst=1, a=0, twiddles=tuple([q - 1] * M)),
            Store(src=1, addr=0),
        ])
        clean = check_program(program, q=q, m=M)
        assert clean.ok
        lazy_in = check_program(program, q=q, m=M, input_bound=2 * q - 1)
        assert not lazy_in.ok
        assert any(f.rule == "P002" for f in lazy_in.findings)

    def test_raise_on_error_carries_report(self):
        program = Program(label="bad", instructions=[Store(src=0, addr=0)])
        report = check_program(program, q=Q, m=M)
        with pytest.raises(ProgramVerificationError) as exc:
            report.raise_on_error()
        assert exc.value.report is report
        assert "bad" in str(exc.value)

    def test_rejects_bad_shapes(self):
        program = Program(label="x", instructions=[])
        with pytest.raises(ValueError):
            check_program(program, q=1, m=M)
        with pytest.raises(ValueError):
            check_program(program, q=Q, m=12)


class TestBackendVerifyHook:
    def test_verifies_each_fresh_compilation_once(self):
        backend = VpuBackend(m=M, verify_programs=True)
        rng = np.random.default_rng(3)
        coeffs = rng.integers(0, Q, size=N, dtype=np.uint64)
        evals = backend.forward_ntt(coeffs, Q)
        np.testing.assert_array_equal(
            backend.inverse_ntt(evals, Q), coeffs)
        assert backend.programs_verified == 2  # ntt + intt
        backend.forward_ntt(coeffs, Q)  # cache hit: no re-verification
        assert backend.programs_verified == 2

    def test_default_off_and_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PROGRAMS", raising=False)
        assert not VpuBackend(m=M).verify_programs
        monkeypatch.setenv("REPRO_VERIFY_PROGRAMS", "1")
        assert VpuBackend(m=M).verify_programs

    def test_bad_program_never_enters_cache(self):
        backend = VpuBackend(m=M, verify_programs=True)
        bad = Program(label="bad", instructions=[
            Load(dst=0, addr=0),
            VMulTwiddle(dst=1, a=0, twiddles=tuple([Q] * M)),
            Store(src=1, addr=0),
        ])

        def compile_bad(*args, **kwargs):
            return bad

        import repro.mapping.ntt as mapping_ntt
        original = mapping_ntt.compile_negacyclic_ntt
        mapping_ntt.compile_negacyclic_ntt = compile_bad
        try:
            with pytest.raises(ProgramVerificationError):
                backend._program("ntt", N, Q)
        finally:
            mapping_ntt.compile_negacyclic_ntt = original
        assert not backend._programs  # nothing cached
