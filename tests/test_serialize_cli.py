"""Tests for ciphertext serialization and the CLI."""

import io

import numpy as np
import pytest

from repro.cli import main
from repro.fhe.ckks import CkksContext
from repro.fhe.params import toy_params
from repro.fhe.serialize import (
    ciphertext_size_bytes,
    load_ciphertext,
    poly_from_arrays,
    poly_to_arrays,
    save_ciphertext,
)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(toy_params(), seed=99)


class TestSerialization:
    def test_poly_roundtrip(self, ctx):
        z = np.random.default_rng(0).uniform(-1, 1, ctx.params.slots)
        poly, _ = ctx.encode(z)
        back = poly_from_arrays(poly_to_arrays(poly))
        np.testing.assert_array_equal(back.residues, poly.residues)
        assert back.primes == poly.primes
        assert back.is_eval == poly.is_eval

    def test_ciphertext_roundtrip_file(self, ctx, tmp_path):
        z = np.random.default_rng(1).uniform(-1, 1, ctx.params.slots)
        ct = ctx.encrypt(z)
        path = tmp_path / "ct.npz"
        save_ciphertext(ct, path)
        loaded = load_ciphertext(path)
        assert loaded.scale == ct.scale
        for a, b in zip(ct.parts, loaded.parts):
            np.testing.assert_array_equal(a.residues, b.residues)
        # Decryption of the round-tripped ciphertext still works.
        np.testing.assert_allclose(ctx.decrypt(loaded), z, atol=1e-3)

    def test_ciphertext_roundtrip_buffer(self, ctx):
        z = np.random.default_rng(2).uniform(-1, 1, ctx.params.slots)
        ct = ctx.encrypt(z)
        buffer = io.BytesIO()
        save_ciphertext(ct, buffer)
        buffer.seek(0)
        loaded = load_ciphertext(buffer)
        np.testing.assert_allclose(ctx.decrypt(loaded), z, atol=1e-3)

    def test_evaluated_ciphertext_roundtrip(self, ctx, tmp_path):
        """Serialization survives level/scale changes."""
        z = np.random.default_rng(3).uniform(-1, 1, ctx.params.slots)
        ct = ctx.multiply(ctx.encrypt(z), ctx.encrypt(z))
        path = tmp_path / "ct2.npz"
        save_ciphertext(ct, path)
        loaded = load_ciphertext(path)
        assert loaded.level == ct.level
        np.testing.assert_allclose(ctx.decrypt(loaded), z * z, atol=2e-3)

    def test_size_accounting(self, ctx):
        ct = ctx.encrypt(np.zeros(ctx.params.slots))
        expected = 2 * ctx.params.levels * ctx.params.n * 8
        assert ciphertext_size_bytes(ct) == expected

    def test_version_check(self, ctx, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, version=np.array([999]), num_parts=np.array([0]),
                 scale=np.array([1.0]))
        with pytest.raises(ValueError):
            load_ciphertext(path)


class TestCli:
    def test_table_commands(self, capsys):
        for cmd in ["table2", "table3", "table4"]:
            assert main([cmd]) == 0
            out = capsys.readouterr().out
            assert "Ours" in out or "lanes" in out or "2^" in out

    def test_verify_small(self, capsys):
        assert main(["verify", "--n", "256", "--m", "16"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "MISMATCH" not in out

    def test_chip(self, capsys):
        assert main(["chip", "--vpus", "4"]) == 0
        assert "mm^2" in capsys.readouterr().out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "--m", "16"]) == 0
        out = capsys.readouterr().out
        assert "Barrett" in out and "shift stages" in out

    def test_motivation(self, capsys):
        assert main(["motivation"]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_controls_dump(self, capsys):
        assert main(["controls", "--m", "8"]) == 0
        out = capsys.readouterr().out
        assert "k=  3" in out and "28 bits" in out
        assert main(["controls", "--m", "64", "--r", "2"]) == 0
        out = capsys.readouterr().out
        assert "k= 25" in out  # 5^2 mod 64

    def test_controls_words_route_correctly(self, capsys):
        """The dumped word for (m=8, k=3) must match affine_controls."""
        from repro.automorphism import affine_controls

        main(["controls", "--m", "8", "--k", "3"])
        out = capsys.readouterr().out
        word = out.splitlines()[1].split(":")[1].split()[0]
        c = affine_controls(8, 3)
        expected = "".join(
            "".join(str(b) for b in c.group_bits[bi])
            for bi in reversed(range(3)))
        assert word == expected

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestMultiSchemeSerialization:
    """BFV/BGV archives round-trip with the scheme tag, across levels."""

    @pytest.fixture(scope="class")
    def bgv_ctx(self):
        from repro.fhe.bgv import BgvContext, BgvParams
        return BgvContext(BgvParams(n=256, levels=3,
                                    plaintext_modulus=65537,
                                    prime_bits=30), seed=99)

    @pytest.fixture(scope="class")
    def bfv_ctx(self):
        from repro.fhe.bfv import BfvContext
        from repro.fhe.bgv import BgvParams
        return BfvContext(BgvParams(n=64, levels=2,
                                    plaintext_modulus=257), seed=99)

    def test_bgv_roundtrip(self, bgv_ctx, tmp_path):
        values = np.arange(bgv_ctx.params.n) % bgv_ctx.t
        ct = bgv_ctx.encrypt(values)
        path = tmp_path / "bgv.npz"
        save_ciphertext(ct, path)
        loaded = load_ciphertext(path)
        assert type(loaded).__name__ == "BgvCiphertext"
        np.testing.assert_array_equal(bgv_ctx.decrypt(loaded), values)

    def test_bgv_roundtrip_after_mod_switch(self, bgv_ctx, tmp_path):
        values = np.arange(bgv_ctx.params.n) % bgv_ctx.t
        ct = bgv_ctx.mod_switch(bgv_ctx.encrypt(values))
        path = tmp_path / "bgv_lower.npz"
        save_ciphertext(ct, path)
        loaded = load_ciphertext(path)
        assert loaded.level == ct.level
        np.testing.assert_array_equal(bgv_ctx.decrypt(loaded), values)

    def test_bfv_roundtrip(self, bfv_ctx, tmp_path):
        values = np.arange(bfv_ctx.params.n) % bfv_ctx.t
        ct = bfv_ctx.encrypt(values)
        path = tmp_path / "bfv.npz"
        save_ciphertext(ct, path)
        loaded = load_ciphertext(path)
        assert type(loaded).__name__ == "BfvCiphertext"
        np.testing.assert_array_equal(bfv_ctx.decrypt(loaded), values)

    def test_digests_distinguish_schemes(self, bgv_ctx, bfv_ctx):
        from repro.fhe.serialize import ciphertext_digest
        a = bgv_ctx.encrypt(np.zeros(bgv_ctx.params.n, dtype=np.int64))
        b = bfv_ctx.encrypt(np.zeros(bfv_ctx.params.n, dtype=np.int64))
        assert ciphertext_digest(a) != ciphertext_digest(b)


class TestSerializationHardening:
    """Typed errors on truncated, corrupted, or mismatched archives."""

    def _saved(self, ctx, tmp_path):
        z = np.random.default_rng(4).uniform(-1, 1, ctx.params.slots)
        path = tmp_path / "ct.npz"
        save_ciphertext(ctx.encrypt(z), path)
        return path

    def test_truncated_archive_typed(self, ctx, tmp_path):
        from repro.fhe.serialize import SerializationError
        path = self._saved(ctx, tmp_path)
        path.write_bytes(path.read_bytes()[:60])
        with pytest.raises(SerializationError):
            load_ciphertext(path)

    def test_digest_mismatch_detected(self, ctx, tmp_path):
        from repro.fhe.serialize import SerializationError
        path = self._saved(ctx, tmp_path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        # Tamper with one residue word; keep the stored digest.
        arrays["part0_residues"] = arrays["part0_residues"].copy()
        arrays["part0_residues"][0, 0] ^= 1
        np.savez(path, **arrays)
        with pytest.raises(SerializationError, match="digest"):
            load_ciphertext(path)

    def test_missing_field_typed(self, ctx, tmp_path):
        from repro.fhe.serialize import SerializationError
        path = self._saved(ctx, tmp_path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files
                      if name != "part0_primes"}
        np.savez(path, **arrays)
        with pytest.raises(SerializationError):
            load_ciphertext(path)

    def test_residue_shape_mismatch_typed(self, ctx, tmp_path):
        from repro.fhe.serialize import SerializationError
        path = self._saved(ctx, tmp_path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        # One residue row too few for the primes tuple.
        arrays["part0_residues"] = arrays["part0_residues"][:-1]
        np.savez(path, **arrays)
        with pytest.raises(SerializationError):
            load_ciphertext(path)

    def test_not_a_zipfile_typed(self, tmp_path):
        from repro.fhe.serialize import SerializationError
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an archive")
        with pytest.raises(SerializationError):
            load_ciphertext(path)
