"""Unit tests of the serving-layer primitives (deadline, limits,
breaker, admission)."""

import asyncio

import pytest

from repro.serve.admission import AdmissionController, PoolHealth
from repro.serve.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.serve.deadline import Deadline, with_deadline
from repro.serve.errors import DeadlineExceeded
from repro.serve.limits import RetryBudget, RetryPolicy, TokenBucket


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(0.6)
        assert deadline.remaining() == pytest.approx(0.4)
        assert not deadline.expired()
        clock.advance(0.5)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_bounded_caps_per_attempt(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        attempt = deadline.bounded(0.25)
        assert attempt.remaining() == pytest.approx(0.25)
        # Near expiry the attempt inherits the smaller request budget.
        clock.advance(0.9)
        assert deadline.bounded(0.25).remaining() == pytest.approx(0.1)

    def test_with_deadline_passes_value(self):
        async def work():
            return 41 + 1

        async def main():
            return await with_deadline(work(), Deadline.after(1.0))

        assert asyncio.run(main()) == 42

    def test_with_deadline_cancels_and_types_timeout(self):
        cancelled = asyncio.Event()

        async def hang():
            try:
                await asyncio.Event().wait()
            except asyncio.CancelledError:
                cancelled.set()
                raise

        async def main():
            with pytest.raises(DeadlineExceeded):
                await with_deadline(hang(), Deadline.after(0.01))
            # Cancellation reached the wrapped task before we resumed.
            assert cancelled.is_set()

        asyncio.run(main())


class TestTokenBucket:
    def test_burst_then_starve_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.1)
        clock.advance(0.1)
        assert bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(10.0)
        assert bucket.try_acquire(3.0)
        assert not bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)


class TestRetryBudget:
    def test_spend_down_then_earn_back(self):
        budget = RetryBudget(ratio=0.5, initial=1.0, cap=2.0)
        assert budget.try_spend()
        assert not budget.try_spend()
        budget.deposit()
        budget.deposit()  # 2 completions x 0.5 = one retry earned
        assert budget.try_spend()

    def test_cap(self):
        budget = RetryBudget(ratio=1.0, initial=0.0, cap=1.5)
        for _ in range(10):
            budget.deposit()
        assert budget.balance == pytest.approx(1.5)


class TestRetryPolicy:
    def test_deterministic_jitter(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert [a.delay(3, k) for k in (1, 2, 3)] == [
            b.delay(3, k) for k in (1, 2, 3)]

    def test_distinct_requests_decorrelate(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay(1, 1) != policy.delay(2, 1)

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base=0.01, multiplier=2.0, max_delay=0.02,
                             seed=0)
        # Jitter is in [0.5, 1.5), so the cap bounds every delay by
        # 1.5 * max_delay.
        for attempt in range(1, 8):
            assert policy.delay(0, attempt) < 0.03


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_half_open_probe_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.5,
                                 probe_limit=1, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(0.6)
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.allow()          # the probe slot
        assert not breaker.allow()      # only one probe at a time
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.5,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(0.6)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.opened_total == 2


class TestAdmission:
    def test_capacity_scales_with_health(self):
        health = [1.0]
        controller = AdmissionController(100, health=lambda: health[0])
        assert controller.capacity() == 100
        health[0] = 0.5
        assert controller.capacity() == 50
        health[0] = 0.0
        assert controller.capacity() == 1  # min_capacity floor

    def test_admit_against_depth(self):
        controller = AdmissionController(4)
        assert controller.admit(3)
        assert not controller.admit(4)

    def test_retry_after_grows_with_backlog(self):
        controller = AdmissionController(10)
        shallow = controller.retry_after(depth=12, workers=2)
        deep = controller.retry_after(depth=50, workers=2)
        assert deep > shallow > 0

    def test_pool_health_adapter(self):
        class FakePool:
            num_vpus = 4
            healthy_units = (0, 2)

        assert PoolHealth(FakePool())() == pytest.approx(0.5)
