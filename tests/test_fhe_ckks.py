"""End-to-end CKKS tests: the homomorphic properties the accelerator's
workload depends on (paper §II-A)."""

import numpy as np
import pytest

from repro.fhe.ckks import CkksContext
from repro.fhe.params import CkksParams, small_params, toy_params


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(toy_params(), seed=7)


@pytest.fixture(scope="module")
def rot_ctx():
    context = CkksContext(toy_params(), seed=8)
    context.generate_galois_keys([1, 2, 4, 64], conjugation=True)
    return context


def rand_slots(ctx, seed, real=False):
    rng = np.random.default_rng(seed)
    slots = ctx.params.slots
    z = rng.uniform(-1, 1, slots)
    if not real:
        z = z + 1j * rng.uniform(-1, 1, slots)
    return z


class TestEncryptDecrypt:
    def test_roundtrip(self, ctx):
        z = rand_slots(ctx, 0)
        np.testing.assert_allclose(ctx.decrypt(ctx.encrypt(z)), z, atol=1e-3)

    def test_fresh_ciphertext_shape(self, ctx):
        ct = ctx.encrypt(rand_slots(ctx, 1))
        assert ct.size == 2
        assert ct.level == ctx.params.top_level
        assert ct.scale == ctx.params.scale

    def test_distinct_encryptions_differ(self, ctx):
        z = rand_slots(ctx, 2)
        a, b = ctx.encrypt(z), ctx.encrypt(z)
        assert not np.array_equal(a.parts[0].residues, b.parts[0].residues)
        np.testing.assert_allclose(ctx.decrypt(a), ctx.decrypt(b), atol=1e-3)


class TestHAdd:
    def test_add(self, ctx):
        z1, z2 = rand_slots(ctx, 3), rand_slots(ctx, 4)
        out = ctx.decrypt(ctx.add(ctx.encrypt(z1), ctx.encrypt(z2)))
        np.testing.assert_allclose(out, z1 + z2, atol=1e-3)

    def test_sub_and_negate(self, ctx):
        z1, z2 = rand_slots(ctx, 5), rand_slots(ctx, 6)
        out = ctx.decrypt(ctx.sub(ctx.encrypt(z1), ctx.encrypt(z2)))
        np.testing.assert_allclose(out, z1 - z2, atol=1e-3)
        out = ctx.decrypt(ctx.negate(ctx.encrypt(z1)))
        np.testing.assert_allclose(out, -z1, atol=1e-3)

    def test_add_plain(self, ctx):
        z1, z2 = rand_slots(ctx, 7), rand_slots(ctx, 8)
        out = ctx.decrypt(ctx.add_plain(ctx.encrypt(z1), z2))
        np.testing.assert_allclose(out, z1 + z2, atol=1e-3)

    def test_add_across_levels(self, ctx):
        """Operands at different levels are mod-reduced automatically."""
        z1, z2 = rand_slots(ctx, 9), rand_slots(ctx, 10)
        low = ctx.mod_reduce(ctx.encrypt(z1), ctx.params.top_level - 1)
        out = ctx.decrypt(ctx.add(low, ctx.encrypt(z2)))
        np.testing.assert_allclose(out, z1 + z2, atol=1e-3)

    def test_scale_mismatch_rejected(self, ctx):
        z = rand_slots(ctx, 11)
        ct = ctx.encrypt(z)
        ct_rescaled = ctx.multiply(ct, ct)  # different scale now
        with pytest.raises(ValueError):
            ctx.add(ct, ct_rescaled)


class TestHMult:
    def test_multiply(self, ctx):
        z1, z2 = rand_slots(ctx, 12), rand_slots(ctx, 13)
        ct = ctx.multiply(ctx.encrypt(z1), ctx.encrypt(z2))
        assert ct.size == 2  # relinearized
        assert ct.level == ctx.params.top_level - 1  # rescaled
        np.testing.assert_allclose(ctx.decrypt(ct), z1 * z2, atol=2e-3)

    def test_square(self, ctx):
        z = rand_slots(ctx, 14)
        np.testing.assert_allclose(ctx.decrypt(ctx.square(ctx.encrypt(z))),
                                   z * z, atol=2e-3)

    def test_multiply_without_rescale(self, ctx):
        z1, z2 = rand_slots(ctx, 15), rand_slots(ctx, 16)
        ct = ctx.multiply(ctx.encrypt(z1), ctx.encrypt(z2), rescale_after=False)
        assert ct.level == ctx.params.top_level
        assert ct.scale == ctx.params.scale ** 2
        np.testing.assert_allclose(ctx.decrypt(ct), z1 * z2, atol=2e-3)

    def test_multiply_plain(self, ctx):
        z1, z2 = rand_slots(ctx, 17), rand_slots(ctx, 18)
        out = ctx.decrypt(ctx.multiply_plain(ctx.encrypt(z1), z2))
        np.testing.assert_allclose(out, z1 * z2, atol=2e-3)

    def test_depth_two(self, ctx):
        z1, z2, z3 = (rand_slots(ctx, s) for s in (19, 20, 21))
        ct = ctx.multiply(ctx.multiply(ctx.encrypt(z1), ctx.encrypt(z2)),
                          ctx.encrypt(z3))
        np.testing.assert_allclose(ctx.decrypt(ct), z1 * z2 * z3, atol=2e-2)

    def test_unrelinearized_three_part_decrypts(self, ctx):
        z1, z2 = rand_slots(ctx, 22), rand_slots(ctx, 23)
        a, b = ctx.encrypt(z1), ctx.encrypt(z2)
        d0 = a.parts[0] * b.parts[0]
        d1 = a.parts[0] * b.parts[1] + a.parts[1] * b.parts[0]
        d2 = a.parts[1] * b.parts[1]
        from repro.fhe.ckks import Ciphertext

        raw = Ciphertext([d0, d1, d2], a.scale * b.scale)
        np.testing.assert_allclose(ctx.decrypt(raw), z1 * z2, atol=2e-3)

    def test_relinearize_validation(self, ctx):
        z = rand_slots(ctx, 24)
        ct = ctx.encrypt(z)
        from repro.fhe.ckks import Ciphertext

        with pytest.raises(ValueError):
            ctx.relinearize(Ciphertext(ct.parts * 2, ct.scale))


class TestHRot:
    @pytest.mark.parametrize("steps", [1, 2, 4, 64])
    def test_rotation(self, rot_ctx, steps):
        z = rand_slots(rot_ctx, 30 + steps)
        out = rot_ctx.decrypt(rot_ctx.rotate(rot_ctx.encrypt(z), steps))
        np.testing.assert_allclose(out, np.roll(z, -steps), atol=2e-3)

    def test_rotation_by_zero(self, rot_ctx):
        z = rand_slots(rot_ctx, 40)
        out = rot_ctx.decrypt(rot_ctx.rotate(rot_ctx.encrypt(z), 0))
        np.testing.assert_allclose(out, z, atol=1e-3)

    def test_conjugate(self, rot_ctx):
        z = rand_slots(rot_ctx, 41)
        out = rot_ctx.decrypt(rot_ctx.conjugate(rot_ctx.encrypt(z)))
        np.testing.assert_allclose(out, np.conj(z), atol=1e-3)

    def test_composed_rotations(self, rot_ctx):
        z = rand_slots(rot_ctx, 42)
        ct = rot_ctx.rotate(rot_ctx.rotate(rot_ctx.encrypt(z), 1), 2)
        np.testing.assert_allclose(rot_ctx.decrypt(ct), np.roll(z, -3),
                                   atol=3e-3)

    def test_missing_key_raises(self, rot_ctx):
        z = rand_slots(rot_ctx, 43)
        with pytest.raises(KeyError):
            rot_ctx.rotate(rot_ctx.encrypt(z), 3)

    def test_rotate_sum_pattern(self, rot_ctx):
        """The classic log-depth all-slots sum (dot products, bootstrapping
        linear phases) built from HRot + HAdd."""
        slots = rot_ctx.params.slots
        z = rand_slots(rot_ctx, 44, real=True)
        ct = rot_ctx.encrypt(z)
        for steps in [1, 2, 4]:
            ct = rot_ctx.add(ct, rot_ctx.rotate(ct, steps))
        expected = np.zeros(slots, dtype=complex)
        for shift in range(8):
            expected += np.roll(z, -shift)
        np.testing.assert_allclose(rot_ctx.decrypt(ct), expected, atol=2e-2)


class TestLevelsAndScales:
    def test_mod_reduce_validation(self, ctx):
        ct = ctx.encrypt(rand_slots(ctx, 50))
        low = ctx.mod_reduce(ct, 0)
        with pytest.raises(ValueError):
            ctx.mod_reduce(low, 1)

    def test_rescale_tracks_scale(self, ctx):
        ct = ctx.encrypt(rand_slots(ctx, 51))
        ct2 = ctx.multiply(ct, ct, rescale_after=False)
        ct3 = ctx.rescale(ct2)
        dropped = ctx.params.primes[ctx.params.top_level]
        assert ct3.scale == pytest.approx(ct2.scale / dropped)

    def test_exhausted_levels(self):
        params = CkksParams(n=256, levels=2, scale_bits=24, prime_bits=28)
        c = CkksContext(params, seed=3)
        z = np.zeros(params.slots)
        ct = c.multiply(c.encrypt(z), c.encrypt(z))
        assert ct.level == 0
        with pytest.raises(ValueError):
            c.rescale(ct)


class TestLargerRing:
    def test_small_params_pipeline(self):
        """N=1024 sanity pass: encrypt-multiply-rotate-decrypt."""
        c = CkksContext(small_params(), seed=9)
        c.generate_galois_keys([1])
        rng = np.random.default_rng(1)
        z1 = rng.uniform(-1, 1, c.params.slots)
        z2 = rng.uniform(-1, 1, c.params.slots)
        ct = c.multiply(c.encrypt(z1), c.encrypt(z2))
        ct = c.rotate(ct, 1)
        np.testing.assert_allclose(c.decrypt(ct), np.roll(z1 * z2, -1),
                                   atol=3e-3)
