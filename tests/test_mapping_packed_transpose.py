"""Tests for the packed (ragged-dimension) transpose and group-local
shift routing — the reproduction's layout finding (docs/theory.md §3)."""

import numpy as np
import pytest

from repro.core import NetworkConfig, Program, VectorProcessingUnit
from repro.core.network import InterLaneNetwork
from repro.mapping.transpose import (
    compile_packed_transpose,
    group_shift_controls,
)

Q = 998244353


class TestGroupShiftControls:
    @pytest.mark.parametrize("m,c", [(8, 2), (8, 4), (64, 16), (64, 2)])
    def test_rotates_each_group(self, m, c):
        net = InterLaneNetwork(m)
        x = np.arange(m)
        for amount in range(c):
            out = net.traverse(x, NetworkConfig(
                shift=group_shift_controls(m, c, amount)))
            for g in range(m // c):
                np.testing.assert_array_equal(
                    out[g * c:(g + 1) * c],
                    np.roll(x[g * c:(g + 1) * c], amount))

    def test_single_pass(self):
        """Group-local shifts route in ONE traversal — the affine theorem
        modulo the group size."""
        net = InterLaneNetwork(64)
        before = net.passes
        net.traverse(np.arange(64), NetworkConfig(
            shift=group_shift_controls(64, 8, 5)))
        assert net.passes == before + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            group_shift_controls(16, 3, 1)
        with pytest.raises(ValueError):
            group_shift_controls(16, 32, 1)


class TestPackedTranspose:
    @pytest.mark.parametrize("m,c", [(8, 2), (8, 4), (16, 4), (64, 16)])
    def test_per_group_square_transpose(self, m, c):
        """out[r][g*c + w] == in[w][g*c + r] for every lane group g."""
        vpu = VectorProcessingUnit(m=m, q=Q, regfile_entries=2 * m + 2)
        tile = np.random.default_rng(m + c).integers(
            0, Q, (c, m)).astype(np.uint64)
        for r in range(c):
            vpu.regfile.write(2 + r, tile[r])
        vpu.execute(compile_packed_transpose(m, c, 2, 2 + c))
        out = np.stack([vpu.regfile.read(2 + c + r) for r in range(c)])
        for g in range(m // c):
            block_in = tile[:, g * c:(g + 1) * c]
            block_out = out[:, g * c:(g + 1) * c]
            np.testing.assert_array_equal(block_out, block_in.T)

    @pytest.mark.parametrize("m,c", [(8, 4), (64, 8)])
    def test_involution(self, m, c):
        """Applying the packed transpose twice restores the tile."""
        vpu = VectorProcessingUnit(m=m, q=Q, regfile_entries=2 * m + 2)
        tile = np.random.default_rng(1).integers(0, Q, (c, m)).astype(np.uint64)
        for r in range(c):
            vpu.regfile.write(2 + r, tile[r])
        vpu.execute(compile_packed_transpose(m, c, 2, 2 + c))
        # Move the result back into the source window and transpose again.
        for r in range(c):
            vpu.regfile.write(2 + r, vpu.regfile.read(2 + c + r))
        vpu.execute(compile_packed_transpose(m, c, 2, 2 + c))
        out = np.stack([vpu.regfile.read(2 + c + r) for r in range(c)])
        np.testing.assert_array_equal(out, tile)

    def test_pass_count(self):
        """Two network traversals per element — the same cost the square
        transpose pays; no CG assist with this layout."""
        prog = compile_packed_transpose(64, 16, 2, 18)
        assert len(prog) == 2 * 16
        for instr in prog:
            assert instr.config.cg is None  # shift stages only

    def test_validation(self):
        with pytest.raises(ValueError):
            compile_packed_transpose(16, 16, 0, 20)  # c must be < m
        with pytest.raises(ValueError):
            compile_packed_transpose(16, 3, 0, 20)
        with pytest.raises(ValueError):
            compile_packed_transpose(16, 4, 0, 2)  # overlapping windows
