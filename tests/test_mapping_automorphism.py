"""End-to-end tests for the automorphism mapping (paper §IV-B)."""

import numpy as np
import pytest

from repro.automorphism import AffinePermutation, galois_eval_permutation, paper_sigma
from repro.core import VectorProcessingUnit
from repro.core.isa import NetworkPass
from repro.mapping import (
    automorphism_layout_pack,
    automorphism_layout_unpack,
    compile_automorphism,
    compile_reduction,
)
from repro.mapping.automorphism import network_passes_for_automorphism

Q = 998244353


def run_automorphism(perm, m, x):
    cols = perm.n // m
    vpu = VectorProcessingUnit(m=m, q=Q, memory_rows=max(4, 2 * cols))
    vpu.memory.data[:cols] = automorphism_layout_pack(x, m)
    prog = compile_automorphism(perm, m)
    stats = vpu.run_fresh(prog)
    out = automorphism_layout_unpack(vpu.memory, perm.n, m, base_row=cols)
    return out, stats, prog


class TestAutomorphismMapping:
    @pytest.mark.parametrize("m", [8, 64])
    @pytest.mark.parametrize("r", [0, 1, 2, 7])
    def test_paper_sigma(self, m, r):
        n = 16 * m
        x = np.random.default_rng(r).integers(0, Q, n, dtype=np.uint64)
        perm = paper_sigma(n, r)
        out, _, _ = run_automorphism(perm, m, x)
        np.testing.assert_array_equal(out, perm.apply(x))

    @pytest.mark.parametrize("m", [8, 16])
    def test_all_multipliers(self, m):
        n = 4 * m
        x = np.arange(n, dtype=np.uint64)
        for k in range(1, min(n, 64), 2):
            perm = AffinePermutation(n, k)
            out, _, _ = run_automorphism(perm, m, x)
            np.testing.assert_array_equal(out, perm.apply(x))

    def test_affine_with_offset(self):
        """The exact CKKS evaluation-domain Galois permutation (affine
        with nonzero offset) maps the same way."""
        n, m = 512, 8
        x = np.random.default_rng(3).integers(0, Q, n, dtype=np.uint64)
        perm = galois_eval_permutation(n, 5)
        out, _, _ = run_automorphism(perm, m, x)
        np.testing.assert_array_equal(out, perm.apply(x))

    def test_single_network_traversal_per_element(self):
        """THE §V-C claim: N/m passes total — one traversal per element."""
        n, m = 1024, 64
        perm = paper_sigma(n, 5)
        x = np.arange(n, dtype=np.uint64)
        out, stats, prog = run_automorphism(perm, m, x)
        np.testing.assert_array_equal(out, perm.apply(x))
        assert stats.network_passes == n // m
        assert network_passes_for_automorphism(n, m) == n // m

    def test_n_equals_m(self):
        m = 16
        perm = paper_sigma(m, 3)
        x = np.arange(m, dtype=np.uint64)
        out, stats, _ = run_automorphism(perm, m, x)
        np.testing.assert_array_equal(out, perm.apply(x))
        assert stats.network_passes == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            compile_automorphism(paper_sigma(100 * 3, 1), 8)  # not pow2 n
        with pytest.raises(ValueError):
            compile_automorphism(paper_sigma(64, 1), 64, src_base=0, dst_base=0)


class TestReduction:
    @pytest.mark.parametrize("m", [4, 8, 64])
    def test_all_lanes_hold_sum(self, m):
        vpu = VectorProcessingUnit(m=m, q=Q)
        x = np.random.default_rng(m).integers(0, Q, m, dtype=np.uint64)
        vpu.regfile.write(0, x)
        vpu.execute(compile_reduction(m))
        expected = int(x.astype(object).sum() % Q)
        assert all(int(v) == expected for v in vpu.regfile.read(0))

    def test_logarithmic_cost(self):
        prog = compile_reduction(64)
        assert len(prog) == 12  # 6 shifts + 6 adds

    def test_validation(self):
        with pytest.raises(ValueError):
            compile_reduction(6)
