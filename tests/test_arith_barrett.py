"""Unit tests for the Barrett and Montgomery reducer datapath models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import BarrettReducer, MontgomeryReducer

PRIMES = [12289, 65537, 786433, 998244353, 4611686018326724609]  # up to 62-bit


class TestBarrett:
    @pytest.mark.parametrize("q", PRIMES)
    def test_mul_exhaustive_corners(self, q):
        red = BarrettReducer(q)
        corners = [0, 1, 2, q // 2, q - 2, q - 1]
        for a in corners:
            for b in corners:
                assert red.mul(a, b) == (a * b) % q

    @pytest.mark.parametrize("q", PRIMES)
    def test_two_correction_bound(self, q):
        """Classic Barrett quotient error is <= 2: never more than two
        correction subtractions."""
        red = BarrettReducer(q)
        rng = np.random.default_rng(42)
        for _ in range(2000):
            a = int(rng.integers(0, q))
            b = int(rng.integers(0, q))
            assert red.mul(a, b) == (a * b) % q
        assert red.max_corrections_seen <= 2

    def test_add_sub(self):
        red = BarrettReducer(12289)
        assert red.add(12288, 1) == 0
        assert red.sub(0, 1) == 12288
        assert red.add(5, 7) == 12
        assert red.sub(5, 7) == 12287

    def test_reduce_rejects_out_of_range(self):
        red = BarrettReducer(17)
        with pytest.raises(ValueError):
            red.reduce(17 * 17)
        with pytest.raises(ValueError):
            red.reduce(-1)

    def test_bad_modulus(self):
        for q in [0, 1, 2, 1 << 63]:
            with pytest.raises(ValueError):
                BarrettReducer(q)

    def test_mul_vec_matches_scalar(self):
        q = 998244353
        red = BarrettReducer(q)
        rng = np.random.default_rng(7)
        a = rng.integers(0, q, size=512, dtype=np.uint64)
        b = rng.integers(0, q, size=512, dtype=np.uint64)
        got = red.mul_vec(a, b)
        expected = np.array([red.mul(int(x), int(y)) for x, y in zip(a, b)],
                            dtype=np.uint64)
        np.testing.assert_array_equal(got, expected)

    def test_mul_vec_requires_narrow_modulus(self):
        red = BarrettReducer(PRIMES[-1])
        with pytest.raises(ValueError):
            red.mul_vec(np.array([1]), np.array([1]))

    def test_op_tally(self):
        red = BarrettReducer(12289)
        result, ops = red.mul_count_ops(12288, 12288)
        assert result == (12288 * 12288) % 12289
        assert ops["wide_multiplies"] == 3
        assert 1 <= ops["subtractions"] <= 3

    @settings(max_examples=200)
    @given(st.integers(min_value=0, max_value=998244352),
           st.integers(min_value=0, max_value=998244352))
    def test_mul_property(self, a, b):
        red = BarrettReducer(998244353)
        assert red.mul(a, b) == (a * b) % 998244353


class TestMontgomery:
    @pytest.mark.parametrize("q", PRIMES)
    def test_roundtrip(self, q):
        red = MontgomeryReducer(q)
        for a in [0, 1, q // 3, q - 1]:
            assert red.from_mont(red.to_mont(a)) == a

    @pytest.mark.parametrize("q", PRIMES)
    def test_mul(self, q):
        red = MontgomeryReducer(q)
        rng = np.random.default_rng(3)
        for _ in range(200):
            a, b = int(rng.integers(0, q)), int(rng.integers(0, q))
            am, bm = red.to_mont(a), red.to_mont(b)
            assert red.from_mont(red.mul(am, bm)) == (a * b) % q

    def test_mul_plain(self):
        red = MontgomeryReducer(12289)
        assert red.mul_plain(12288, 2) == (12288 * 2) % 12289

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError):
            MontgomeryReducer(16)

    def test_redc_range_check(self):
        red = MontgomeryReducer(17)
        with pytest.raises(ValueError):
            red.redc(17 << red.width)

    def test_agreement_with_barrett(self):
        q = 786433
        bar = BarrettReducer(q)
        mon = MontgomeryReducer(q)
        rng = np.random.default_rng(11)
        for _ in range(500):
            a, b = int(rng.integers(0, q)), int(rng.integers(0, q))
            assert bar.mul(a, b) == mon.mul_plain(a, b)
