"""Symbolic SRAM/DRAM resource verification of staged plans (R rules)."""

from repro.accel.dram import DramModel
from repro.accel.sram import OnChipSram
from repro.analysis.resources import (
    Alloc,
    Compute,
    Evict,
    Stage,
    StagedPlan,
    Writeback,
    analyze_staged_plan,
    automorphism_staging_plan,
    keyswitch_staging_plan,
    ntt_staging_plan,
)
from repro.fhe.params import default_params, toy_params


def _error_rules(report) -> list[str]:
    return [f.rule for f in report.findings.errors]


class TestCanonicalPlansClean:
    def test_keyswitch_plans_fit_default_sram(self):
        for params in (toy_params(), default_params()):
            report = analyze_staged_plan(keyswitch_staging_plan(params))
            assert report.ok, list(report.findings)
            assert 0 < report.peak_words <= report.capacity_words
            assert report.dram_words > 0 and report.dram_ns > 0

    def test_ntt_and_automorphism_plans_fit(self):
        big = default_params()
        for plan in (ntt_staging_plan(256, 16),
                     ntt_staging_plan(big.n, 64),
                     automorphism_staging_plan(big.n, big.levels + 1)):
            report = analyze_staged_plan(plan)
            assert report.ok, list(report.findings)

    def test_keyswitch_double_buffering_counts_prefetch(self):
        # The prefetch overlap must be visible in the peak: one digit
        # resident + its key + both accumulators + the next digit in
        # flight.
        params = toy_params()
        n, limbs = params.n, params.levels + 1
        report = analyze_staged_plan(keyswitch_staging_plan(params))
        assert report.peak_words == n * limbs * (1 + 2 + 2) + n * limbs


class TestR001CapacityOverflow:
    def test_undersized_sram_refused(self):
        plan = keyswitch_staging_plan(default_params())
        full = analyze_staged_plan(plan)
        shrunk = OnChipSram(capacity_bytes=full.peak_words * 8 // 2)
        report = analyze_staged_plan(plan, shrunk)
        assert not report.ok
        assert set(_error_rules(report)) == {"R001"}
        assert report.peak_words == full.peak_words

    def test_reported_once_per_overflow_transition(self):
        plan = StagedPlan("overflow-once", (
            Stage("a", 10),
            Stage("b", 10),   # 20 > 12: overflow starts here
            Stage("c", 10),   # still overflowed: not re-reported
            Evict("b"),
            Evict("c"),       # back under capacity
            Stage("d", 10),   # second transition: reported again
            Evict("a"),
            Evict("d"),
        ))
        report = analyze_staged_plan(plan, OnChipSram(capacity_bytes=12 * 8))
        assert _error_rules(report) == ["R001", "R001"]


class TestR002UseAfterEvict:
    def test_read_after_evict(self):
        plan = StagedPlan("uae", (
            Stage("a", 4),
            Evict("a"),
            Compute("use", reads=("a",)),
        ))
        report = analyze_staged_plan(plan)
        assert _error_rules(report) == ["R002"]

    def test_restage_after_evict_is_a_legal_reload(self):
        plan = StagedPlan("reload", (
            Stage("a", 4),
            Evict("a"),
            Stage("a", 4),
            Compute("use", reads=("a",)),
            Evict("a"),
        ))
        assert analyze_staged_plan(plan).ok


class TestR003UnknownBuffer:
    def test_read_of_never_staged_buffer(self):
        plan = StagedPlan("unknown", (
            Compute("use", reads=("ghost",)),
        ))
        report = analyze_staged_plan(plan)
        assert _error_rules(report) == ["R003"]

    def test_reported_once_per_buffer(self):
        plan = StagedPlan("unknown-twice", (
            Compute("use", reads=("ghost",)),
            Writeback("ghost"),
        ))
        report = analyze_staged_plan(plan)
        assert _error_rules(report) == ["R003"]


class TestR004DoubleBufferConflict:
    def test_prefetch_overlapping_active_read(self):
        plan = StagedPlan("conflict", (
            Stage("a", 4),
            Compute("use", reads=("a",), prefetch=("a", 4)),
        ))
        report = analyze_staged_plan(plan)
        assert _error_rules(report) == ["R004"]

    def test_disjoint_prefetch_is_clean_and_becomes_resident(self):
        plan = StagedPlan("pipelined", (
            Stage("a", 4),
            Compute("use a", reads=("a",), prefetch=("b", 4)),
            Evict("a"),
            Compute("use b", reads=("b",)),
            Evict("b"),
        ))
        report = analyze_staged_plan(plan)
        assert report.ok
        assert report.peak_words == 8  # a resident + b in flight


class TestAccounting:
    def test_dram_traffic_counts_stages_prefetch_and_writebacks(self):
        plan = StagedPlan("traffic", (
            Stage("a", 100),
            Compute("work", reads=("a",), writes=("a",),
                    prefetch=("b", 50)),
            Writeback("a"),
            Evict("a"),
            Evict("b"),
        ))
        dram = DramModel()
        report = analyze_staged_plan(plan, dram=dram)
        assert report.dram_words == 100 + 50 + 100
        assert report.dram_ns == dram.transfer_ns(report.dram_words * 8)

    def test_alloc_charges_no_dram_traffic(self):
        plan = StagedPlan("alloc", (
            Alloc("out", 64),
            Evict("out"),
        ))
        report = analyze_staged_plan(plan)
        assert report.dram_words == 0
        assert report.peak_words == 64
