"""End-to-end tests: compiled NTT programs executed on the VPU versus the
golden transforms."""

import numpy as np
import pytest

from repro.core import VectorProcessingUnit
from repro.mapping import (
    NttMappingError,
    compile_intt,
    compile_ntt,
    compile_small_intt,
    compile_small_ntt,
    compile_tile_transpose,
    pack_for_ntt,
    pack_ntt_values,
    required_registers,
    unpack_ntt_result,
)
from repro.core.isa import Load, NetworkPass, Program, Store
from repro.ntt import naive_intt, naive_ntt
from repro.ntt.cooley_tukey import ntt_dif
from repro.ntt.tables import get_tables

Q = 998244353


def make_vpu(m, n):
    return VectorProcessingUnit(
        m=m, q=Q,
        regfile_entries=required_registers(m),
        memory_rows=max(16, 2 * n // m),
    )


def rand(n, seed):
    return np.random.default_rng(seed).integers(0, Q, n, dtype=np.uint64)


class TestTileTranspose:
    @pytest.mark.parametrize("m", [4, 8, 16])
    def test_transpose_correct(self, m):
        vpu = make_vpu(m, m * m)
        tile = rand(m * m, m).reshape(m, m)
        for r in range(m):
            vpu.regfile.write(2 + r, tile[r])
        prog = compile_tile_transpose(m, 2, 2 + m)
        vpu.execute(prog)
        got = np.stack([vpu.regfile.read(2 + m + r) for r in range(m)])
        np.testing.assert_array_equal(got, tile.T)

    def test_pass_count(self):
        """Each element traverses the network exactly twice: 2m passes."""
        prog = compile_tile_transpose(8, 2, 10)
        assert len(prog) == 16
        assert all(isinstance(i, NetworkPass) for i in prog)

    def test_window_overlap_rejected(self):
        with pytest.raises(ValueError):
            compile_tile_transpose(8, 2, 5)


class TestSmallNtt:
    @pytest.mark.parametrize("m", [4, 8, 16, 64])
    def test_forward_matches_dif(self, m):
        t = get_tables(m, Q)
        vpu = make_vpu(m, m)
        x = rand(m, m + 1)
        vpu.regfile.write(0, x)
        prog = Program()
        compile_small_ntt(m, t.omega, Q, prog)
        vpu.execute(prog)
        expected = ntt_dif([int(v) for v in x], t)
        assert [int(v) for v in vpu.regfile.read(0)] == expected

    @pytest.mark.parametrize("m", [4, 16, 64])
    def test_roundtrip(self, m):
        t = get_tables(m, Q)
        vpu = make_vpu(m, m)
        x = rand(m, m + 2)
        vpu.regfile.write(0, x)
        prog = Program()
        compile_small_ntt(m, t.omega, Q, prog)
        compile_small_intt(m, t.omega_inv, Q, prog)
        vpu.execute(prog)
        np.testing.assert_array_equal(vpu.regfile.read(0), x)

    def test_cycle_structure(self):
        """log2(m) fused stages: one cycle each (network + butterfly)."""
        prog = Program()
        compile_small_ntt(64, get_tables(64, Q).omega, Q, prog)
        assert len(prog) == 6


class TestFullNtt:
    @pytest.mark.parametrize("m,n", [(4, 16), (4, 64), (8, 64), (8, 512),
                                     (16, 256), (64, 4096)])
    def test_forward_matches_naive(self, m, n):
        vpu = make_vpu(m, n)
        x = rand(n, n)
        vpu.memory.data[:n // m] = pack_for_ntt(x, m)
        prog = compile_ntt(n, m, Q)
        vpu.execute(prog)
        got = unpack_ntt_result(vpu.memory, n, m)
        t = get_tables(n, Q)
        if n <= 512:
            expected = naive_ntt([int(v) for v in x], t.omega, Q)
        else:
            from repro.ntt import vec_ntt_dif
            out = vec_ntt_dif(x, t)
            expected = np.empty_like(out)
            expected[t.bitrev] = out
            expected = [int(v) for v in expected]
        assert [int(v) for v in got] == expected

    @pytest.mark.parametrize("m,n", [(4, 16), (4, 64), (8, 512), (16, 256)])
    def test_inverse_roundtrip(self, m, n):
        vpu = make_vpu(m, n)
        x = rand(n, n + 5)
        vpu.memory.data[:n // m] = pack_for_ntt(x, m)
        vpu.execute(compile_ntt(n, m, Q))
        vpu.execute(compile_intt(n, m, Q))
        got = vpu.memory.data[:n // m]
        np.testing.assert_array_equal(got, pack_for_ntt(x, m))

    @pytest.mark.parametrize("m,n", [(4, 64), (8, 64)])
    def test_inverse_from_packed_values(self, m, n):
        """compile_intt consumes the documented layout, not just whatever
        compile_ntt leaves behind."""
        vpu = make_vpu(m, n)
        x = rand(n, n + 7)
        t = get_tables(n, Q)
        values = np.array(naive_ntt([int(v) for v in x], t.omega, Q),
                          dtype=np.uint64)
        vpu.memory.data[:n // m] = pack_ntt_values(values, m)
        vpu.execute(compile_intt(n, m, Q))
        np.testing.assert_array_equal(vpu.memory.data[:n // m],
                                      pack_for_ntt(x, m))

    def test_layout_roundtrip_utils(self):
        x = rand(64, 3)
        t = get_tables(64, Q)
        values = np.array(naive_ntt([int(v) for v in x], t.omega, Q),
                          dtype=np.uint64)
        # pack/unpack are mutually inverse on the value layout.
        packed = pack_ntt_values(values, 8)

        class FakeMem:
            data = packed
        got = unpack_ntt_result(FakeMem, 64, 8)
        np.testing.assert_array_equal(got, values)

    @pytest.mark.parametrize("m,n", [(8, 16), (8, 32), (16, 64), (64, 1024),
                                     (16, 512), (8, 128)])
    def test_ragged_sizes_forward(self, m, n):
        """Ragged N (not a power of m): packed layout + grouped CG."""
        vpu = make_vpu(m, n)
        x = rand(n, n + 11)
        vpu.memory.data[:n // m] = pack_for_ntt(x, m)
        vpu.execute(compile_ntt(n, m, Q))
        got = unpack_ntt_result(vpu.memory, n, m)
        t = get_tables(n, Q)
        from repro.ntt import vec_ntt_dif

        expected = np.empty(n, dtype=np.uint64)
        expected[t.bitrev] = vec_ntt_dif(x, t)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("m,n", [(8, 32), (64, 1024), (16, 512)])
    def test_ragged_roundtrip(self, m, n):
        vpu = make_vpu(m, n)
        x = rand(n, n + 13)
        vpu.memory.data[:n // m] = pack_for_ntt(x, m)
        vpu.execute(compile_ntt(n, m, Q))
        vpu.execute(compile_intt(n, m, Q))
        np.testing.assert_array_equal(vpu.memory.data[:n // m],
                                      pack_for_ntt(x, m))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(NttMappingError):
            compile_ntt(64, 6, Q)   # m not a power of two
        with pytest.raises(NttMappingError):
            compile_ntt(48, 16, Q)  # N not a power of two
        with pytest.raises(NttMappingError):
            compile_ntt(8, 16, Q)   # N below the lane count

    def test_utilization_accounting(self):
        """The executed program's resource stats feed Table III: compute
        utilization must fall in the paper's 70-90% band for 2D sizes."""
        m, n = 16, 256
        vpu = make_vpu(m, n)
        vpu.memory.data[:n // m] = pack_for_ntt(rand(n, 1), m)
        stats = vpu.run_fresh(compile_ntt(n, m, Q))
        # Exclude loads/stores (overlapped with compute by the streaming
        # SRAM in real hardware).
        active = stats.cycles - stats.loads - stats.stores
        busy = stats.multiplier_busy
        assert 0.7 < busy / active < 1.0
        assert stats.network_passes > 0
