"""Ciphertext-state abstract interpretation (fhecheck C rules)."""

import numpy as np
import pytest

from repro.analysis.ctstate import (
    CtStateError,
    Op,
    bfv_mult_add_sequence,
    bgv_mult_switch_sequence,
    check_sequence,
    ckks_mult_rotate_sequence,
    run_checked,
)
from repro.fhe.bgv import BgvParams
from repro.fhe.params import default_params, toy_params


def _rules(report) -> list[str]:
    return [f.rule for f in report.findings]


class TestCanonicalSequencesClean:
    def test_ckks_pipeline(self):
        for params in (toy_params(), default_params()):
            ops = ckks_mult_rotate_sequence(params.levels)
            report = check_sequence(ops, params)
            assert report.ok, list(report.findings)
            assert report.min_budget_bits > 0
            # The pipeline consumes levels-1 chain primes.
            assert report.states[-1].level == 0

    def test_bgv_pipeline(self):
        params = BgvParams(n=256, levels=3, plaintext_modulus=65537,
                           prime_bits=30)
        report = check_sequence(bgv_mult_switch_sequence(3), params,
                                scheme="bgv")
        assert report.ok, list(report.findings)

    def test_bfv_pipeline(self):
        params = BgvParams(n=256, levels=3, plaintext_modulus=65537,
                           prime_bits=30)
        report = check_sequence(bfv_mult_add_sequence(), params,
                                scheme="bfv")
        assert report.ok, list(report.findings)


class TestC001LevelMismatch:
    def test_add_across_levels(self):
        params = toy_params()
        ops = [
            Op("encrypt"), Op("encrypt"),
            Op("mod_reduce", (1,), arg=params.levels - 2),
            Op("add", (0, 2)),
        ]
        report = check_sequence(ops, params)
        assert "C001" in _rules(report)


class TestC002ScaleOverflow:
    def test_two_multiplies_without_rescale(self):
        ops = [
            Op("encrypt"), Op("encrypt"),
            Op("multiply", (0, 1)),
            Op("multiply", (2, 2)),
            Op("rotate", (3,), arg=1),
        ]
        report = check_sequence(ops, toy_params())
        # Exactly one finding: the overflow poisons, the rotate
        # propagates silently.
        assert _rules(report) == ["C002"]


class TestC003ScaleMismatch:
    def test_add_of_mismatched_scales(self):
        ops = [
            Op("encrypt"), Op("encrypt"),
            Op("multiply_plain", (1,)),
            Op("add", (0, 2)),
        ]
        report = check_sequence(ops, toy_params())
        assert "C003" in _rules(report)


class TestC004DomainMismatch:
    def test_ntt_of_eval_domain_value(self):
        report = check_sequence([Op("encrypt"), Op("ntt", (0,))],
                                toy_params())
        assert "C004" in _rules(report)

    def test_intt_then_ntt_round_trip_clean(self):
        report = check_sequence(
            [Op("encrypt"), Op("intt", (0,)), Op("ntt", (1,))],
            toy_params())
        assert report.ok

    def test_rotate_needs_eval_domain(self):
        report = check_sequence(
            [Op("encrypt"), Op("intt", (0,)), Op("rotate", (1,), arg=1)],
            toy_params())
        assert "C004" in _rules(report)


class TestC005SchemeAndLevelErrors:
    def test_rescale_at_level_zero(self):
        params = toy_params()
        ops = [
            Op("encrypt"),
            Op("mod_reduce", (0,), arg=0),
            Op("rescale", (1,)),
        ]
        report = check_sequence(ops, params)
        assert "C005" in _rules(report)

    def test_unknown_op_kind(self):
        report = check_sequence([Op("frobnicate")], toy_params())
        assert _rules(report) == ["C005"]

    def test_op_unsupported_by_scheme(self):
        params = BgvParams(n=256, levels=3, plaintext_modulus=65537,
                           prime_bits=30)
        report = check_sequence(
            [Op("encrypt"), Op("rotate", (0,), arg=1)],
            params, scheme="bfv")
        assert "C005" in _rules(report)

    def test_forward_reference_rejected(self):
        report = check_sequence([Op("rescale", (5,))], toy_params())
        assert "C005" in _rules(report)


class TestC006NoiseExhaustion:
    def test_bgv_multiply_chain_without_switching(self):
        params = BgvParams(n=256, levels=3, plaintext_modulus=65537,
                           prime_bits=30)
        ops = [Op("encrypt"), Op("encrypt"), Op("multiply", (0, 1))]
        for _ in range(5):
            ops.append(Op("multiply", (len(ops) - 1, len(ops) - 1)))
        report = check_sequence(ops, params, scheme="bgv")
        assert "C006" in _rules(report)
        # Poison: exactly one noise finding, not one per later op.
        assert _rules(report).count("C006") == 1


class TestC007SizeMisuse:
    def test_relinearize_of_two_part_value(self):
        report = check_sequence([Op("encrypt"), Op("relinearize", (0,))],
                                toy_params())
        assert "C007" in _rules(report)

    def test_multiply_of_unrelinearized_tensor(self):
        ops = [
            Op("encrypt"), Op("encrypt"),
            Op("tensor", (0, 1)),
            Op("multiply", (2, 2)),
        ]
        report = check_sequence(ops, toy_params())
        assert "C007" in _rules(report)

    def test_tensor_then_relinearize_clean(self):
        ops = [
            Op("encrypt"), Op("encrypt"),
            Op("tensor", (0, 1)),
            Op("relinearize", (2,)),
            Op("rescale", (3,)),
        ]
        report = check_sequence(ops, toy_params())
        assert report.ok, list(report.findings)


class TestRunChecked:
    def test_verified_sequence_executes_correctly(self):
        from repro.fhe.ckks import CkksContext

        params = toy_params()
        ctx = CkksContext(params)
        ctx.generate_galois_keys([1])
        rng = np.random.default_rng(7)
        slots = params.n // 2
        a = rng.uniform(-1, 1, slots)
        b = rng.uniform(-1, 1, slots)

        ops = ckks_mult_rotate_sequence(params.levels)
        values = run_checked(ops, ctx, [a, b], label="toy pipeline")
        got = ctx.decrypt(values[-1]).real
        want = np.roll((a * b) ** 2, -1)
        np.testing.assert_allclose(got, want, atol=1e-2)

    def test_bad_sequence_raises_without_executing(self):
        from repro.fhe.ckks import CkksContext

        params = toy_params()
        ctx = CkksContext(params)
        ops = [
            Op("encrypt"), Op("encrypt"),
            Op("multiply", (0, 1)),
            Op("multiply", (2, 2)),  # scale overflow: C002
        ]
        with pytest.raises(CtStateError) as excinfo:
            run_checked(ops, ctx, [np.zeros(params.n // 2)] * 2)
        assert "C002" in str(excinfo.value)
        assert not excinfo.value.report.ok

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            check_sequence([], toy_params(), scheme="tfhe")
