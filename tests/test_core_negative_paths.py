"""Negative-path and edge-case tests for the core VPU layer."""

import numpy as np
import pytest

from repro.core import (
    NetworkConfig,
    NetworkPass,
    NttStage,
    Program,
    VectorProcessingUnit,
)
from repro.core.vpu import VectorMemory


class TestInstructionValidation:
    def test_network_pass_rot_window_pairing(self):
        with pytest.raises(ValueError):
            NetworkPass(1, 0, NetworkConfig(), src_rot=2)
        with pytest.raises(ValueError):
            NetworkPass(1, 0, NetworkConfig(), src_window=4)
        with pytest.raises(ValueError):
            NetworkPass(1, 0, NetworkConfig(), src_rot=0, src_window=0)

    def test_ntt_stage_kind(self):
        with pytest.raises(ValueError):
            NttStage("fft", 0, 0, (1,))

    def test_diag_read_window_bounds(self):
        vpu = VectorProcessingUnit(m=8, q=998244353, regfile_entries=4)
        prog = Program([NetworkPass(1, 0, NetworkConfig(),
                                    src_rot=0, src_window=8)])
        with pytest.raises(IndexError):
            vpu.execute(prog)

    def test_unknown_instruction_rejected(self):
        from repro.core.isa import Instruction

        class Bogus(Instruction):
            pass

        vpu = VectorProcessingUnit(m=8, q=998244353)
        with pytest.raises(TypeError):
            vpu.execute(Program([Bogus()]))


class TestVectorMemoryEdges:
    def test_zero_sizes_rejected(self):
        with pytest.raises(ValueError):
            VectorMemory(0, 4)
        with pytest.raises(ValueError):
            VectorMemory(4, 0)

    def test_overflow_rejected(self):
        mem = VectorMemory(8, 2)
        with pytest.raises(ValueError):
            mem.load_vector(np.zeros(32, dtype=np.uint64))


class TestModulusEdges:
    def test_modulus_swap_mid_stream(self):
        """RNS limb processing swaps moduli between programs; results must
        track the active modulus."""
        vpu = VectorProcessingUnit(m=8, q=17)
        vpu.regfile.write(0, np.full(8, 16, dtype=np.uint64))
        from repro.core import VMul

        vpu.execute(Program([VMul(1, 0, 0)]))
        assert all(int(v) == (16 * 16) % 17 for v in vpu.regfile.read(1))
        vpu.set_modulus(97)
        vpu.regfile.write(0, np.full(8, 96, dtype=np.uint64))
        vpu.execute(Program([VMul(1, 0, 0)]))
        assert all(int(v) == (96 * 96) % 97 for v in vpu.regfile.read(1))

    def test_stats_survive_modulus_swap(self):
        vpu = VectorProcessingUnit(m=8, q=17)
        from repro.core import VAdd

        vpu.execute(Program([VAdd(1, 0, 0)]))
        vpu.set_modulus(97)
        vpu.execute(Program([VAdd(1, 0, 0)]))
        assert vpu.stats.cycles == 2
