"""White-box tests of the digit-decomposition keyswitch machinery."""

import numpy as np
import pytest

from repro.arith.modular import mod_inverse
from repro.fhe.ckks import CkksContext
from repro.fhe.keyswitch import (
    apply_keyswitch,
    decompose_digits,
    generate_keyswitch_key,
    mod_down,
    mod_switch_exact,
    rescale,
)
from repro.fhe.params import toy_params
from repro.fhe.polynomial import RnsPoly
from repro.fhe.rns import get_basis
from repro.fhe.sampling import sample_uniform_poly


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(toy_params(), seed=33)


@pytest.fixture(scope="module")
def basis():
    p = toy_params()
    return get_basis(p.primes, p.special_prime)


def lift(poly):
    coeff = poly.to_coeff()
    q_prod = 1
    for q in coeff.primes:
        q_prod *= q
    total = np.zeros(coeff.n, dtype=object)
    for i, q in enumerate(coeff.primes):
        q_hat = q_prod // q
        total = (total + coeff.residues[i].astype(object)
                 * (q_hat * mod_inverse(q_hat, q) % q_prod)) % q_prod
    return total, q_prod


class TestDigitDecomposition:
    def test_digits_reconstruct_mod_chain(self, ctx):
        """sum_i digit_i * B_i === x modulo every chain prime — the
        gadget identity the keys rely on."""
        p = ctx.params
        rng = np.random.default_rng(0)
        x = sample_uniform_poly(p.n, p.primes, rng)
        digits = decompose_digits(x, p)
        basis = ctx.basis
        x_coeff = x.to_coeff()
        for j, q in enumerate(p.primes):
            acc = np.zeros(p.n, dtype=object)
            for i, digit in enumerate(digits):
                d_coeff = digit.to_coeff()
                b_ij = int(basis.idempotent_mod_chain[i][j])
                acc = (acc + d_coeff.residues[j].astype(object) * b_ij) % q
            np.testing.assert_array_equal(
                acc.astype(np.uint64), x_coeff.residues[j])

    def test_digit_count_matches_level(self, ctx):
        p = ctx.params
        x = sample_uniform_poly(p.n, p.primes[:2], np.random.default_rng(1))
        digits = decompose_digits(x, p)
        assert len(digits) == 2  # one per limb at this level
        # Every digit spans the level limbs plus the special prime.
        assert all(d.primes == p.primes[:2] + (p.special_prime,)
                   for d in digits)

    def test_digits_are_small(self, ctx):
        """Centered digits stay below q_i/2 — the noise-control property."""
        p = ctx.params
        x = sample_uniform_poly(p.n, p.primes, np.random.default_rng(2))
        for i, digit in enumerate(decompose_digits(x, p)):
            total, q_prod = lift(digit)
            centered = np.where(total > q_prod // 2, total - q_prod, total)
            assert int(np.abs(centered).max()) <= p.primes[i] // 2


class TestKeyswitchCorrectness:
    def test_switches_key_exactly(self, ctx):
        """<ks(x), s_to> ~ x * s_from: the defining property, up to the
        designed noise."""
        p = ctx.params
        rng = np.random.default_rng(3)
        x = sample_uniform_poly(p.n, p.primes, rng)
        # Switch from s^2 to s using the relinearization key.
        t0, t1 = apply_keyswitch(x, ctx.relin_key, p)
        r0 = mod_down(t0, ctx.basis)
        r1 = mod_down(t1, ctx.basis)
        s = ctx.secret
        got = r0 + r1 * s
        expected = x * (s * s)
        diff, q_prod = lift(got - expected)
        centered = np.where(diff > q_prod // 2, diff - q_prod, diff)
        noise = int(np.abs(centered).max())
        # Noise stays far below the modulus (budget preserved).
        assert noise < q_prod // (2 ** 30)

    def test_wrong_key_gives_garbage(self, ctx):
        """Keyswitching with an unrelated key must not preserve the
        relation — a failure-injection sanity check."""
        p = ctx.params
        rng = np.random.default_rng(4)
        x = sample_uniform_poly(p.n, p.primes, rng)
        bogus_secret = RnsPoly.from_int_coeffs(
            np.ones(p.n, dtype=object), p.primes + (p.special_prime,))
        bogus = generate_keyswitch_key(p, bogus_secret, bogus_secret,
                                       np.random.default_rng(5))
        t0, t1 = apply_keyswitch(x, bogus, p)
        got = mod_down(t0, ctx.basis) + mod_down(t1, ctx.basis) * ctx.secret
        expected = x * (ctx.secret * ctx.secret)
        diff, q_prod = lift(got - expected)
        centered = np.where(diff > q_prod // 2, diff - q_prod, diff)
        assert int(np.abs(centered).max()) > q_prod // (2 ** 20)


class TestDivisionHelpers:
    def test_mod_down_requires_special_limb(self, ctx, basis):
        p = ctx.params
        x = sample_uniform_poly(p.n, p.primes, np.random.default_rng(6))
        with pytest.raises(ValueError):
            mod_down(x, basis)

    def test_rescale_divides(self, ctx, basis):
        """rescale(x) ~ x / q_top (within rounding of 1/2 per coeff)."""
        p = ctx.params
        x = sample_uniform_poly(p.n, p.primes, np.random.default_rng(7))
        y = rescale(x, basis)
        x_int, q_prod = lift(x)
        y_int, y_q = lift(y)
        q_top = p.primes[-1]
        x_c = np.where(x_int > q_prod // 2, x_int - q_prod, x_int)
        y_c = np.where(y_int > y_q // 2, y_int - y_q, y_int)
        # Exact integer check: |y * q_top - x| <= q_top / 2.
        for xi, yi in zip(x_c, y_c):
            assert abs(int(yi) * q_top - int(xi)) <= q_top // 2

    def test_rescale_single_limb_rejected(self, ctx, basis):
        p = ctx.params
        x = sample_uniform_poly(p.n, p.primes[:1], np.random.default_rng(8))
        with pytest.raises(ValueError):
            rescale(x, basis)

    def test_mod_switch_exact_preserves_mod_t(self, ctx, basis):
        """The BGV division: result === x * q_top^{-1} (mod t)."""
        t = 65537
        p = ctx.params
        x = sample_uniform_poly(p.n, p.primes, np.random.default_rng(9))
        y = mod_switch_exact(x, basis, t)
        x_int, q_prod = lift(x)
        y_int, y_q = lift(y)
        q_top = p.primes[-1]
        x_c = np.where(x_int > q_prod // 2, x_int - q_prod, x_int)
        y_c = np.where(y_int > y_q // 2, y_int - y_q, y_int)
        inv = mod_inverse(q_top, t)
        for xi, yi in zip(x_c[:64], y_c[:64]):
            assert int(yi) % t == int(xi) * inv % t


class TestFailureInjection:
    def test_corrupted_limb_breaks_decryption(self, ctx):
        z = np.random.default_rng(10).uniform(-1, 1, ctx.params.slots)
        ct = ctx.encrypt(z)
        ct.parts[0].residues[0][7] ^= np.uint64(0xFFFF)
        got = ctx.decrypt(ct)
        assert np.abs(got - z).max() > 0.1  # visibly corrupted

    def test_wrong_context_decrypts_garbage(self, ctx):
        other = CkksContext(toy_params(), seed=777)
        z = np.random.default_rng(11).uniform(-1, 1, ctx.params.slots)
        ct = ctx.encrypt(z)
        got = other.decrypt(ct)
        assert np.abs(got - z).max() > 0.1
