"""Cross-module property tests: randomized end-to-end invariants that tie
the layers together."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automorphism import AffinePermutation, affine_controls
from repro.core import NetworkConfig, VectorProcessingUnit
from repro.mapping import (
    automorphism_layout_pack,
    automorphism_layout_unpack,
    compile_automorphism,
    compile_intt,
    compile_ntt,
    pack_for_ntt,
    required_registers,
    unpack_ntt_result,
)
from repro.ntt import vec_ntt_dif
from repro.ntt.tables import get_tables

Q = 998244353


class TestVpuNttProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from([(4, 16), (4, 64), (8, 64), (8, 512), (16, 256)]),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_vpu_ntt_matches_reference(self, shape, seed):
        m, n = shape
        vpu = VectorProcessingUnit(m=m, q=Q,
                                   regfile_entries=required_registers(m),
                                   memory_rows=max(16, 2 * n // m))
        x = np.random.default_rng(seed).integers(0, Q, n, dtype=np.uint64)
        vpu.memory.data[:n // m] = pack_for_ntt(x, m)
        vpu.execute(compile_ntt(n, m, Q))
        got = unpack_ntt_result(vpu.memory, n, m)
        t = get_tables(n, Q)
        expected = np.empty(n, dtype=np.uint64)
        expected[t.bitrev] = vec_ntt_dif(x, t)
        np.testing.assert_array_equal(got, expected)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_vpu_roundtrip(self, seed):
        m, n = 8, 64
        vpu = VectorProcessingUnit(m=m, q=Q,
                                   regfile_entries=required_registers(m),
                                   memory_rows=2 * n // m)
        x = np.random.default_rng(seed).integers(0, Q, n, dtype=np.uint64)
        vpu.memory.data[:n // m] = pack_for_ntt(x, m)
        vpu.execute(compile_ntt(n, m, Q))
        vpu.execute(compile_intt(n, m, Q))
        np.testing.assert_array_equal(vpu.memory.data[:n // m],
                                      pack_for_ntt(x, m))


class TestVpuAutomorphismProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from([(8, 64), (16, 128), (64, 1024)]),
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=0, max_value=2**20),
    )
    def test_any_affine_permutation(self, shape, k_raw, s):
        m, n = shape
        k = (2 * k_raw + 1) % n
        perm = AffinePermutation(n, k, s % n)
        vpu = VectorProcessingUnit(m=m, q=Q, memory_rows=2 * n // m)
        x = np.arange(n, dtype=np.uint64)
        vpu.memory.data[:n // m] = automorphism_layout_pack(x, m)
        stats = vpu.run_fresh(compile_automorphism(perm, m))
        out = automorphism_layout_unpack(vpu.memory, n, m, base_row=n // m)
        np.testing.assert_array_equal(out, perm.apply(x))
        assert stats.network_passes == n // m

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16),
           st.integers(min_value=0, max_value=63))
    def test_network_inverse_roundtrip(self, k_raw, s):
        """Routing a vector through sigma then sigma^{-1} controls is the
        identity — two passes that cancel."""
        m = 64
        from repro.core import InterLaneNetwork

        k = (2 * k_raw + 1) % m
        perm = AffinePermutation(m, k, s % m)
        inv = perm.inverse()
        net = InterLaneNetwork(m)
        x = np.arange(m)
        mid = net.traverse(x, NetworkConfig(
            shift=affine_controls(m, perm.multiplier, perm.offset)))
        back = net.traverse(mid, NetworkConfig(
            shift=affine_controls(m, inv.multiplier, inv.offset)))
        np.testing.assert_array_equal(back, x)


class TestCkksPipelineProperty:
    @pytest.fixture(scope="class")
    def ctx(self):
        from repro.fhe.ckks import CkksContext
        from repro.fhe.params import toy_params

        context = CkksContext(toy_params(), seed=101)
        context.generate_galois_keys([1, 2])
        return context

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31),
           st.sampled_from(["add", "mult", "rot", "conj_free"]))
    def test_random_op_pipelines(self, ctx, seed, op):
        rng = np.random.default_rng(seed)
        z1 = rng.uniform(-1, 1, ctx.params.slots)
        z2 = rng.uniform(-1, 1, ctx.params.slots)
        ct1, ct2 = ctx.encrypt(z1), ctx.encrypt(z2)
        if op == "add":
            got = ctx.decrypt(ctx.add(ct1, ct2))
            expected = z1 + z2
        elif op == "mult":
            got = ctx.decrypt(ctx.multiply(ct1, ct2))
            expected = z1 * z2
        elif op == "rot":
            got = ctx.decrypt(ctx.rotate(ctx.add(ct1, ct2), 2))
            expected = np.roll(z1 + z2, -2)
        else:  # a free op chain: negate twice
            got = ctx.decrypt(ctx.negate(ctx.negate(ct1)))
            expected = z1
        np.testing.assert_allclose(got.real, expected, atol=5e-3)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_linearity_of_encryption(self, ctx, seed):
        """E(a) + E(b) - E(a+b) decrypts to ~0."""
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1, 1, ctx.params.slots)
        b = rng.uniform(-1, 1, ctx.params.slots)
        resid = ctx.sub(ctx.add(ctx.encrypt(a), ctx.encrypt(b)),
                        ctx.encrypt(a + b))
        np.testing.assert_allclose(ctx.decrypt(resid).real, 0, atol=5e-3)
