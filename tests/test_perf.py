"""Tests for the cycle/utilization models, including validation against
the executable compiler."""

import numpy as np
import pytest

from repro.core import NttStage, VectorProcessingUnit
from repro.core.isa import NetworkPass
from repro.mapping import compile_ntt, pack_for_ntt, required_registers
from repro.perf import (
    PAPER_TABLE_III,
    automorphism_cycle_model,
    ntt_cycle_model,
    table3_rows,
    utilization_report,
)
from repro.perf.cycles import baseline_automorphism_passes, pipeline_depth
from repro.perf.utilization import format_table3

Q = 998244353


class TestCycleModelValidation:
    """The analytic compute/transpose terms must match the compiled
    programs instruction-for-instruction at executable sizes."""

    @pytest.mark.parametrize("m,n", [(4, 16), (4, 64), (8, 64), (8, 512),
                                     (16, 256), (64, 4096),
                                     # ragged sizes (packed layout):
                                     (8, 32), (16, 512), (64, 1024),
                                     (16, 2048)])
    def test_counts_match_compiler(self, m, n):
        prog = compile_ntt(n, m, Q)
        model = ntt_cycle_model(n, m)
        fused_stages = prog.count(NttStage)
        transpose_passes = prog.count(NetworkPass)
        assert fused_stages == model.compute_cycles
        assert transpose_passes == model.network_only_cycles

    def test_executed_stats_match_model(self):
        m, n = 8, 512
        vpu = VectorProcessingUnit(m=m, q=Q,
                                   regfile_entries=required_registers(m),
                                   memory_rows=2 * n // m)
        vpu.memory.data[:n // m] = pack_for_ntt(
            np.random.default_rng(0).integers(0, Q, n, dtype=np.uint64), m)
        stats = vpu.run_fresh(compile_ntt(n, m, Q))
        model = ntt_cycle_model(n, m)
        assert stats.by_type["NttStage"] == model.compute_cycles
        assert stats.by_type.get("NetworkPass", 0) == model.network_only_cycles


class TestTable3:
    def test_paper_band(self):
        """NTT utilization must land in the paper's 70-90% band."""
        for row in table3_rows():
            assert 0.70 <= row.ntt_utilization <= 0.90

    def test_automorphism_always_full(self):
        for row in table3_rows():
            assert row.automorphism_utilization == 1.0

    @pytest.mark.parametrize("n", sorted(PAPER_TABLE_III))
    def test_within_tolerance_of_paper(self, n):
        """Each row within 5 percentage points of the published value."""
        row = utilization_report(n)
        assert abs(row.ntt_utilization - PAPER_TABLE_III[n][0]) < 0.05

    def test_dips_at_dimension_boundaries(self):
        """§V-C: utilization drops when N crosses 2^12 and 2^18 (one more
        decomposition dimension -> one more transposition round)."""
        u = {n: utilization_report(n).ntt_utilization
             for n in sorted(PAPER_TABLE_III)}
        assert u[2**14] < u[2**12]
        assert u[2**20] < u[2**18]
        # And recovers while the dimension count is constant.
        assert u[2**14] < u[2**16] < u[2**18]

    def test_formatting(self):
        text = format_table3()
        assert "2^12" in text and "paper" in text

    def test_other_lane_counts(self):
        row = utilization_report(2**12, m=32)
        assert 0.5 < row.ntt_utilization <= 1.0
        assert row.paper_ntt is None  # paper only reports m=64


class TestCycleModelStructure:
    def test_pipeline_depth(self):
        assert pipeline_depth(64) == 8
        assert pipeline_depth(4) == 3  # merged CG at m=4

    def test_single_dimension_has_no_transposes(self):
        model = ntt_cycle_model(64, 64)
        assert model.network_only_cycles == 0

    def test_automorphism_model(self):
        model = automorphism_cycle_model(2**16, 64)
        assert model.total_cycles == 2**16 // 64
        assert model.utilization == 1.0

    def test_ideal_equals_butterfly_work(self):
        """Ideal cycles = N*log2(N)/m (all m/2 butterfly pairs busy)."""
        model = ntt_cycle_model(2**12, 64)
        assert model.ideal_cycles == 2**12 * 12 // 64


class TestBaselinePassCounts:
    def test_single_pass_designs(self):
        for design in ["ours", "bts", "ark", "sharp"]:
            assert baseline_automorphism_passes(2**12, 64, design) == 64

    def test_f1_needs_more_passes(self):
        f1 = baseline_automorphism_passes(2**12, 64, "f1")
        assert f1 > baseline_automorphism_passes(2**12, 64, "ours")

    def test_unknown_design(self):
        with pytest.raises(ValueError):
            baseline_automorphism_passes(2**12, 64, "nvidia")
