"""Symbolic stage-plan analysis: derived bounds, gates, and the seeded
mutations the acceptance criteria call for (a dropped conditional
subtract must surface as a range/overflow violation)."""

import pytest

from repro.analysis.bounds import (
    keyswitch_lazy_accumulate_ok,
    unclamped_dit_ok,
    unclamped_dit_lane_bound,
)
from repro.analysis.stage_plans import (
    analyze_batched_forward,
    analyze_batched_inverse,
    analyze_dif_lazy,
    analyze_dit_lazy,
    analyze_dit_unclamped,
    analyze_keyswitch_accumulate,
)
from repro.arith.primes import find_ntt_prime

Q28 = find_ntt_prime(512, 28)   # toy regime
Q30 = find_ntt_prime(512, 30)   # Shoup edge
Q31 = find_ntt_prime(512, 31)   # widest vectorized


class TestCleanPlans:
    @pytest.mark.parametrize("q,shoup", [(Q28, True), (Q30, True),
                                         (Q31, False)])
    def test_dif_lazy_clean(self, q, shoup):
        report = analyze_dif_lazy(12, q, shoup=shoup)
        assert report.ok
        assert report.stage_bounds[-1] <= 2 * q - 1

    @pytest.mark.parametrize("q,shoup", [(Q28, True), (Q31, False)])
    def test_dit_lazy_clean(self, q, shoup):
        report = analyze_dit_lazy(12, q, shoup=shoup)
        assert report.ok
        assert report.stage_bounds[-1] <= 2 * q - 1

    def test_dit_unclamped_growth_is_exact(self):
        log_n = 8
        report = analyze_dit_unclamped(log_n, Q28)
        assert report.ok
        # +q per stage from a reduced entry: (s+2)*q - 1 after stage s.
        for s, bound in enumerate(report.stage_bounds[1:]):
            assert bound == (s + 2) * Q28 - 1
        assert report.stage_bounds[-1] == (log_n + 1) * Q28 - 1
        assert unclamped_dit_lane_bound(log_n, Q28) == (log_n + 1) * Q28 - 1

    def test_batched_forward_output_reduced(self):
        report = analyze_batched_forward(8, Q28)
        assert report.ok
        assert report.output_bound <= Q28 - 1


class TestSeededMutations:
    """Acceptance criterion: removing one conditional subtract from a
    lazy plan must be reported as an overflow or range violation."""

    def test_dropped_total_clamp_escapes_invariant(self):
        report = analyze_dif_lazy(12, Q28, shoup=True,
                                  skip_total_clamp=True)
        assert not report.ok
        assert any(f.rule in ("S001", "S003", "S004")
                   for f in report.findings)

    def test_dropped_diff_clamp_escapes_invariant(self):
        report = analyze_dit_lazy(12, Q28, shoup=True,
                                  skip_diff_clamp=True)
        assert not report.ok

    def test_dropped_clamp_at_wide_modulus_overflows_uint64(self):
        # Without Shoup the unclamped growth eventually breaks the raw
        # product bound, not just the declared lane invariant.
        report = analyze_dif_lazy(16, Q31, shoup=False,
                                  skip_total_clamp=True)
        assert not report.ok

    def test_shoup_rejects_wide_modulus(self):
        report = analyze_dif_lazy(12, Q31, shoup=True)
        assert not report.ok
        assert any(f.rule == "S002" for f in report.findings)


class TestGates:
    def test_unclamped_gate_matches_exact_product(self):
        for log_n in (6, 12, 16):
            for q in (Q28, Q30, Q31):
                exact = ((log_n + 1) * q - 1) * (q - 1) <= (1 << 64) - 1
                assert unclamped_dit_ok(log_n, q) == exact, (log_n, q)

    def test_refused_unclamped_plan_explains_itself(self):
        assert not unclamped_dit_ok(6, Q31)
        report = analyze_batched_inverse(6, Q31, unclamped=True)
        assert not report.ok and report.findings.errors

    def test_keyswitch_bound_is_exact(self):
        d, q = 4, Q28
        report = analyze_keyswitch_accumulate(d, q, lazy=True)
        assert report.ok
        assert report.output_bound <= q - 1
        assert report.max_intermediate == d * (q - 1) ** 2
        assert keyswitch_lazy_accumulate_ok(d, q)
