"""Tests for the fully-on-VPU negacyclic NTT programs."""

import numpy as np
import pytest

from repro.core import VectorProcessingUnit
from repro.mapping import (
    pack_for_ntt,
    pack_ntt_values,
    required_registers,
    unpack_ntt_result,
)
from repro.mapping.ntt import compile_negacyclic_intt, compile_negacyclic_ntt
from repro.ntt import NegacyclicNtt

Q = 998244353


def make_vpu(m, n):
    return VectorProcessingUnit(m=m, q=Q,
                                regfile_entries=required_registers(m),
                                memory_rows=max(16, 2 * n // m))


class TestNegacyclicOnVpu:
    @pytest.mark.parametrize("m,n", [(8, 64), (8, 32), (16, 256), (16, 512)])
    def test_forward_matches_library(self, m, n):
        vpu = make_vpu(m, n)
        x = np.random.default_rng(n).integers(0, Q, n, dtype=np.uint64)
        vpu.memory.data[:n // m] = pack_for_ntt(x, m)
        vpu.execute(compile_negacyclic_ntt(n, m, Q))
        got = unpack_ntt_result(vpu.memory, n, m)
        expected = NegacyclicNtt(n, Q).forward(x)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("m,n", [(8, 64), (16, 512)])
    def test_inverse_matches_library(self, m, n):
        vpu = make_vpu(m, n)
        values = np.random.default_rng(n + 1).integers(0, Q, n,
                                                       dtype=np.uint64)
        vpu.memory.data[:n // m] = pack_ntt_values(values, m)
        vpu.execute(compile_negacyclic_intt(n, m, Q))
        got = vpu.memory.data[:n // m].T.reshape(-1)
        expected = NegacyclicNtt(n, Q).inverse(values)
        np.testing.assert_array_equal(got, expected)

    def test_roundtrip_on_vpu(self):
        m, n = 8, 128
        vpu = make_vpu(m, n)
        x = np.random.default_rng(2).integers(0, Q, n, dtype=np.uint64)
        vpu.memory.data[:n // m] = pack_for_ntt(x, m)
        vpu.execute(compile_negacyclic_ntt(n, m, Q))
        mid = unpack_ntt_result(vpu.memory, n, m)
        vpu.memory.data[:n // m] = pack_ntt_values(mid, m)
        vpu.execute(compile_negacyclic_intt(n, m, Q))
        np.testing.assert_array_equal(vpu.memory.data[:n // m].T.reshape(-1),
                                      x)

    def test_no_host_arithmetic_needed(self):
        """The psi folding appears as element-wise twiddle instructions
        in the program — the VPU's element-wise mode, not host work."""
        prog = compile_negacyclic_ntt(64, 8, Q)
        from repro.core.isa import VMulTwiddle

        fold_passes = prog.count(VMulTwiddle)
        rows = 64 // 8
        assert fold_passes >= rows  # one fold per row (plus dim twiddles)
