"""Tests for the iterative and reference NTT implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ntt import (
    bit_reverse_permute,
    intt_dit,
    naive_intt,
    naive_ntt,
    ntt_dif,
    vec_intt_dit,
    vec_ntt_dif,
)
from repro.ntt.tables import NttTables, get_tables

Q = 998244353  # = 119 * 2^23 + 1


def rand_poly(n, q=Q, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, q, size=n, dtype=np.uint64)


class TestTables:
    def test_root_orders(self):
        t = NttTables(64, Q)
        assert pow(t.omega, 64, Q) == 1
        assert pow(t.omega, 32, Q) == Q - 1
        assert pow(t.psi, 2, Q) == t.omega
        assert pow(t.psi, 64, Q) == Q - 1

    def test_power_tables(self):
        t = NttTables(16, Q)
        for j in range(16):
            assert int(t.omega_powers[j]) == pow(t.omega, j, Q)
            assert int(t.psi_inv_powers[j]) == pow(t.psi, -j, Q)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NttTables(3, Q)
        with pytest.raises(ValueError):
            NttTables(8, 23)  # 16 does not divide 22

    def test_cache(self):
        assert get_tables(32, Q) is get_tables(32, Q)


class TestScalarNtt:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256])
    def test_dif_matches_naive(self, n):
        t = get_tables(n, Q)
        x = [int(v) for v in rand_poly(n, seed=n)]
        got = ntt_dif(x, t)
        expected = naive_ntt(x, t.omega, Q)
        # DIF output is bit-reversed.
        assert list(bit_reverse_permute(np.array(got, dtype=object))) == expected

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256])
    def test_dif_dit_roundtrip(self, n):
        t = get_tables(n, Q)
        x = [int(v) for v in rand_poly(n, seed=n + 1)]
        assert intt_dit(ntt_dif(x, t), t) == x

    def test_naive_roundtrip(self):
        t = get_tables(16, Q)
        x = [int(v) for v in rand_poly(16, seed=3)]
        assert naive_intt(naive_ntt(x, t.omega, Q), t.omega, Q) == x

    def test_wide_modulus(self):
        # 60-bit prime: scalar path only.
        from repro.arith import find_ntt_prime

        q = find_ntt_prime(64, 60)
        t = get_tables(32, q)
        x = [int(v) % q for v in rand_poly(32, seed=9)]
        assert intt_dit(ntt_dif(x, t), t) == x

    def test_length_check(self):
        t = get_tables(8, Q)
        with pytest.raises(ValueError):
            ntt_dif([1, 2, 3], t)
        with pytest.raises(ValueError):
            intt_dit([1, 2, 3], t)

    def test_linearity(self):
        n = 32
        t = get_tables(n, Q)
        x = [int(v) for v in rand_poly(n, seed=4)]
        y = [int(v) for v in rand_poly(n, seed=5)]
        fx, fy = ntt_dif(x, t), ntt_dif(y, t)
        fxy = ntt_dif([(a + b) % Q for a, b in zip(x, y)], t)
        assert fxy == [(a + b) % Q for a, b in zip(fx, fy)]

    def test_delta_transforms_to_ones(self):
        n = 64
        t = get_tables(n, Q)
        delta = [1] + [0] * (n - 1)
        assert ntt_dif(delta, t) == [1] * n


class TestVectorizedNtt:
    @pytest.mark.parametrize("n", [4, 16, 64, 1024, 4096])
    def test_matches_scalar(self, n):
        t = get_tables(n, Q)
        x = rand_poly(n, seed=n + 2)
        got = vec_ntt_dif(x, t)
        expected = ntt_dif([int(v) for v in x], t)
        assert [int(v) for v in got] == expected

    @pytest.mark.parametrize("n", [4, 64, 4096])
    def test_roundtrip(self, n):
        t = get_tables(n, Q)
        x = rand_poly(n, seed=n + 3)
        np.testing.assert_array_equal(vec_intt_dit(vec_ntt_dif(x, t), t), x)

    def test_batched_axes(self):
        n = 64
        t = get_tables(n, Q)
        x = rand_poly(5 * n, seed=8).reshape(5, n)
        got = vec_ntt_dif(x, t)
        assert got.shape == (5, n)
        for i in range(5):
            np.testing.assert_array_equal(got[i], vec_ntt_dif(x[i], t))

    def test_shape_check(self):
        t = get_tables(8, Q)
        with pytest.raises(ValueError):
            vec_ntt_dif(np.zeros(7, dtype=np.uint64), t)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**32))
    def test_roundtrip_property(self, log_n, seed):
        n = 1 << log_n
        t = get_tables(n, Q)
        x = rand_poly(n, seed=seed)
        np.testing.assert_array_equal(vec_intt_dit(vec_ntt_dif(x, t), t), x)

    def test_convolution_theorem_cyclic(self):
        from repro.ntt.reference import naive_cyclic_poly_mul

        n = 32
        t = get_tables(n, Q)
        a = rand_poly(n, seed=10)
        b = rand_poly(n, seed=11)
        fa, fb = vec_ntt_dif(a, t), vec_ntt_dif(b, t)
        prod = vec_intt_dit(fa * fb % np.uint64(Q), t)
        expected = naive_cyclic_poly_mul([int(v) for v in a], [int(v) for v in b], Q)
        assert [int(v) for v in prod] == expected
