"""The repository-specific AST lint rules (fhecheck lint)."""

import textwrap

from repro.analysis.lint import lint_paths, lint_source


def _rules(source: str) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source))]


class TestFHC001ObjectLeak:
    def test_flags_object_narrowed_without_reduction(self):
        assert "FHC001" in _rules("""
            def f(x):
                return (x.astype(object) << 32).astype(np.uint64)
            """)

    def test_mod_reduction_exempts(self):
        assert _rules("""
            def f(x, q):
                return (x.astype(object) * x % q).astype(np.uint64)
            """) == []

    def test_floordiv_rebound_exempts(self):
        # The Shoup table precompute: (w << 32) // q is < 2**32.
        assert _rules("""
            def f(w, q):
                return ((w.astype(object) << 32) // q).astype(np.uint64)
            """) == []

    def test_flags_minimum_on_object(self):
        assert "FHC001" in _rules("""
            def f(x, q):
                return np.minimum(x.astype(object), x.astype(object) - q)
            """)


class TestFHC002Narrowing:
    def test_flags_unguarded_narrowing(self):
        assert "FHC002" in _rules("""
            def f(x):
                return x.astype(np.int64)
            """)

    def test_power_of_two_guard_exempts(self):
        assert _rules("""
            def f(x, q):
                assert q < (1 << 31)
                return x.astype(np.int64)
            """) == []

    def test_centered_lift_idiom_exempts(self):
        assert _rules("""
            def f(x, q):
                signed = x.astype(np.int64)
                return np.where(signed > q // 2, signed - q, signed)
            """) == []

    def test_widening_to_uint64_exempt(self):
        assert _rules("""
            def f(x):
                return x.astype(np.uint64)
            """) == []


class TestFHC003UnreducedProduct:
    def test_flags_sum_times_value_mod_q(self):
        assert "FHC003" in _rules("""
            def f(u, v, tw, q):
                "operates on uint64 rows"
                return (u + v) * tw % q
            """)

    def test_scalar_python_int_code_exempt(self):
        assert _rules("""
            def f(u, v, tw, q):
                return (u + v) * tw % q
            """) == []


class TestFHC004LazyEscape:
    def test_flags_unreduced_lazy_result(self):
        assert "FHC004" in _rules("""
            def f(a, q3, two_q3, tw):
                dif_stages_lazy(a, q3, two_q3, tw)
                return a
            """)

    def test_clamp_after_call_exempts(self):
        assert _rules("""
            def f(a, q, q3, two_q3, tw):
                dif_stages_lazy(a, q3, two_q3, tw)
                return np.minimum(a, a - q)
            """) == []


class TestFHC005FaultHookGuard:
    def test_flags_unguarded_attribute_dereference(self):
        assert "FHC005" in _rules("""
            def f(self, x):
                return self.fault_hook.filter_alu("mul", x)
            """)

    def test_flags_unguarded_alias(self):
        assert "FHC005" in _rules("""
            def f(self, x):
                hook = self.fault_hook
                return hook.filter_alu("mul", x)
            """)

    def test_guarded_alias_exempts(self):
        assert _rules("""
            def f(self, x):
                hook = self.fault_hook
                if hook is not None:
                    x = hook.filter_alu("mul", x)
                return x
            """) == []

    def test_accessor_alias_guarded_exempts(self):
        assert _rules("""
            def f(acc):
                hook = current_fault_hook()
                if hook is not None:
                    hook.corrupt_buffer("keyswitch", acc)
                return acc
            """) == []

    def test_installer_and_accessor_calls_exempt(self):
        assert _rules("""
            def f(vpu, injector):
                previous = install_fault_hook(injector)
                vpu.install_fault_hook(injector)
                install_fault_hook(previous)
                return current_fault_hook()
            """) == []

    def test_boolop_and_guard_exempts(self):
        assert _rules("""
            def f(self, x):
                hook = self.fault_hook
                return hook is not None and hook.filter_alu("mul", x)
            """) == []

    def test_ifexp_guard_exempts(self):
        assert _rules("""
            def f(self, x):
                hook = self.fault_hook
                return hook.filter_alu("mul", x) if hook is not None else x
            """) == []

    def test_dereference_outside_the_guard_still_flagged(self):
        assert "FHC005" in _rules("""
            def f(self, x):
                hook = self.fault_hook
                if hook is not None:
                    x = hook.filter_alu("mul", x)
                return hook.filter_alu("add", x)
            """)


class TestFHC006ObsHookGuard:
    def test_flags_unguarded_accessor_alias(self):
        assert "FHC006" in _rules("""
            def f(x):
                obs = current_obs_hook()
                obs.count("vpu.executions")
                return x
            """)

    def test_guarded_alias_exempts(self):
        assert _rules("""
            def f(x):
                obs = current_obs_hook()
                if obs is not None:
                    obs.begin("vpu.execute", m=16)
                y = work(x)
                if obs is not None:
                    obs.end(cycles=y)
                return y
            """) == []

    def test_installer_and_accessor_calls_exempt(self):
        assert _rules("""
            def f(observer):
                previous = install_obs_hook(observer)
                install_obs_hook(previous)
                return current_obs_hook()
            """) == []

    def test_dereference_outside_the_guard_still_flagged(self):
        assert "FHC006" in _rules("""
            def f(x):
                obs = current_obs_hook()
                if obs is not None:
                    obs.begin("span")
                obs.end()
                return x
            """)

    def test_transitive_alias_tracked(self):
        assert "FHC006" in _rules("""
            def f(x):
                obs = current_obs_hook()
                o2 = obs
                o2.count("x")
            """)

    def test_fault_and_obs_rules_are_independent(self):
        rules = _rules("""
            def f(self, x):
                self.fault_hook.filter_alu("mul", x)
                obs = current_obs_hook()
                obs.count("x")
            """)
        assert "FHC005" in rules and "FHC006" in rules


class TestFHC007CompiledGateGuard:
    def test_flags_ungated_lazy_kernel(self):
        assert "FHC007" in _rules("""
            def f(impl, plan, x, out, work):
                cjit_fwd_ntt_lazy(impl, plan, x, out, work)
            """)

    def test_gate_alias_exempts(self):
        assert _rules("""
            def f(impl, plan, x, out, work):
                use_ok = plan is not None and plan.lazy_stages_ok
                if use_ok:
                    cjit_fwd_ntt_lazy(impl, plan, x, out, work)
            """) == []

    def test_direct_gate_attribute_exempts(self):
        assert _rules("""
            def f(impl, plan, x, out, work):
                if plan.unclamped_ok:
                    cjit_inv_ntt_unclamped(impl, plan, x, out, work)
                else:
                    if plan.lazy_stages_ok:
                        cjit_inv_ntt_lazy(impl, plan, x, out, work)
            """) == []

    def test_ungated_call_in_else_branch_flagged(self):
        assert "FHC007" in _rules("""
            def f(impl, plan, x, out, work):
                if plan.unclamped_ok:
                    cjit_inv_ntt_unclamped(impl, plan, x, out, work)
                else:
                    cjit_inv_ntt_lazy(impl, plan, x, out, work)
            """)

    def test_non_lazy_entries_exempt(self):
        assert _rules("""
            def f(impl, x, out, dest, acc0, acc1, q, mu):
                cjit_auto_batch(impl, x, out, dest)
                cjit_ks_accum_reduced(impl, x, x, x, acc0, acc1, q, mu)
            """) == []

    def test_suppression(self):
        assert _rules("""
            def f(impl, plan, x, out, work):
                cjit_fwd_ntt_lazy(impl, plan, x, out, work)  # fhecheck: ok=FHC007
            """) == []


class TestSuppressions:
    def test_same_line_suppression(self):
        assert _rules("""
            def f(x):
                return x.astype(np.int64)  # fhecheck: ok
            """) == []

    def test_preceding_line_rule_scoped(self):
        assert _rules("""
            def f(x):
                # fhecheck: ok=FHC002 — bounded by construction
                return x.astype(np.int64)
            """) == []

    def test_wrong_rule_does_not_suppress(self):
        # The finding still fires, and the mismatched suppression is
        # itself reported as stale (FHC010).
        assert _rules("""
            def f(x):
                return x.astype(np.int64)  # fhecheck: ok=FHC001
            """) == ["FHC002", "FHC010"]


class TestFHC008SequenceCheckGuard:
    def test_flags_unchecked_execution(self):
        assert "FHC008" in _rules("""
            def f(ops, ctx, inputs):
                return execute_sequence(ops, ctx, inputs)
            """)

    def test_checked_entry_point_shape_exempts(self):
        # The exact shape of ctstate.run_checked must pass its own rule.
        assert _rules("""
            def run_checked(ops, ctx, inputs, label=""):
                report = check_sequence(ops, ctx.params, label=label)
                if report.ok:
                    return execute_sequence(ops, ctx, inputs)
                raise CtStateError(report)
            """) == []

    def test_raise_on_error_guard_exempts(self):
        assert _rules("""
            def f(ops, ctx, inputs):
                check_sequence(ops, ctx.params).raise_on_error()
                report = check_sequence(ops, ctx.params)
                if report.ok:
                    return execute_sequence(ops, ctx, inputs)
            """) == []

    def test_check_after_execution_still_flagged(self):
        assert "FHC008" in _rules("""
            def f(ops, ctx, inputs):
                out = execute_sequence(ops, ctx, inputs)
                check_sequence(ops, ctx.params)
                return out
            """)

    def test_suppression(self):
        assert _rules("""
            def f(ops, ctx, inputs):
                return execute_sequence(ops, ctx, inputs)  # fhecheck: ok=FHC008
            """) == []


class TestFHC009SramStagingGuard:
    def test_flags_unchecked_stage(self):
        assert "FHC009" in _rules("""
            def f(self, work):
                self.sram.stage(work)
            """)

    def test_fits_check_exempts(self):
        assert _rules("""
            def f(self, work):
                if not self.sram.fits(work.size):
                    raise ValueError("working set does not fit")
                self.sram.stage(work)
            """) == []

    def test_capacity_reference_exempts(self):
        assert _rules("""
            def f(self, work):
                assert work.size * 8 <= self.sram.capacity_bytes
                self.sram.stage(work)
            """) == []

    def test_non_sram_receiver_exempt(self):
        assert _rules("""
            def f(self, work):
                self.pipeline.stage(work)
            """) == []


class TestFHC010UnusedSuppression:
    def test_stale_suppression_warned(self):
        findings = lint_source(textwrap.dedent("""
            def f(x):
                return x + 1  # fhecheck: ok=FHC002
            """))
        assert [f.rule for f in findings] == ["FHC010"]
        assert findings[0].severity.value == "warning"

    def test_used_suppression_not_warned(self):
        assert _rules("""
            def f(x):
                return x.astype(np.int64)  # fhecheck: ok=FHC002
            """) == []

    def test_docstring_mention_is_inert(self):
        # Suppressions live in COMMENT tokens only; prose mentioning the
        # marker (docstrings, string fixtures) neither suppresses nor
        # counts as stale.
        assert _rules('''
            def f(x):
                """Explains the marker: # fhecheck: ok=FHC002 — unused."""
                return x.astype(np.int64)
            ''') == ["FHC002"]


class TestFHC011ServeDeadline:
    SERVE = "src/repro/serve/engine.py"

    def _serve_rules(self, source: str) -> list[str]:
        import textwrap

        from repro.analysis.lint import lint_source

        return [f.rule for f in
                lint_source(textwrap.dedent(source), filename=self.SERVE)]

    def test_flags_bare_backend_await(self):
        assert "FHC011" in self._serve_rules("""
            async def handler(backend, ct):
                return await backend.keyswitch(ct)
            """)

    def test_flags_executor_style_work_names(self):
        assert "FHC011" in self._serve_rules("""
            async def handler(pool, rows):
                return await pool.run_ntt_batch(rows)
            """)
        assert "FHC011" in self._serve_rules("""
            async def handler(loop, fn):
                return await loop.run_in_executor(None, fn)
            """)

    def test_deadline_wrapper_sanctions_the_await(self):
        assert self._serve_rules("""
            async def handler(backend, ct, deadline):
                return await with_deadline(backend.keyswitch(ct), deadline)
            """) == []

    def test_named_wrapper_variants_sanction(self):
        assert self._serve_rules("""
            async def handler(backend, ct, deadline):
                return await dispatch_with_deadline(backend, ct, deadline)
            """) == []

    def test_queue_and_sleep_awaits_exempt(self):
        assert self._serve_rules("""
            async def worker(queue, lock):
                item = await queue.get()
                await asyncio.sleep(0.1)
                async with lock:
                    pass
                return item
            """) == []

    def test_rule_scoped_to_serve_package(self):
        import textwrap

        from repro.analysis.lint import lint_source

        source = textwrap.dedent("""
            async def handler(backend, ct):
                return await backend.keyswitch(ct)
            """)
        assert lint_source(source, filename="src/repro/fhe/other.py") == []

    def test_suppression_comment_applies(self):
        assert self._serve_rules("""
            async def handler(backend, ct):
                return await backend.keyswitch(ct)  # fhecheck: ok=FHC011
            """) == []


class TestDriver:
    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def f(:", filename="broken.py")
        assert [f.rule for f in findings] == ["FHC000"]

    def test_repo_source_tree_is_clean(self):
        import repro

        root = __import__("pathlib").Path(repro.__file__).parent
        assert lint_paths([root]) == []


class TestFHC012RecoverDurability:
    RECOVER = "src/repro/recover/wal.py"

    def _recover_rules(self, source: str) -> list[str]:
        import textwrap

        from repro.analysis.lint import lint_source

        return [f.rule for f in
                lint_source(textwrap.dedent(source),
                            filename=self.RECOVER)]

    def test_flags_bare_write(self):
        assert "FHC012" in self._recover_rules("""
            def append(fh, blob):
                fh.write(blob)
                fh.flush()
            """)

    def test_fsync_evidence_sanctions_the_write(self):
        assert self._recover_rules("""
            def append(fh, blob):
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            """) == []

    def test_fsync_helper_name_counts_as_evidence(self):
        assert self._recover_rules("""
            def append(fh, blob, fsync_fn):
                fh.write(blob)
                fsync_fn(fh)
            """) == []

    def test_rule_scoped_to_recover_package(self):
        import textwrap

        from repro.analysis.lint import lint_source

        source = textwrap.dedent("""
            def append(fh, blob):
                fh.write(blob)
            """)
        assert lint_source(source,
                           filename="src/repro/fhe/other.py") == []

    def test_every_write_in_the_function_flagged(self):
        rules = self._recover_rules("""
            def append_two(fh, a, b):
                fh.write(a)
                fh.write(b)
            """)
        assert rules == ["FHC012", "FHC012"]

    def test_suppression_comment_applies(self):
        assert self._recover_rules("""
            def append(fh, blob):
                fh.write(blob)  # fhecheck: ok=FHC012
            """) == []


class TestFHC013SpanTraceContext:
    """Seeded mutations for the span/trace-context rule: a span created
    in the serving or recovery layer with no trace-context evidence in
    the function is exactly the bug the request-scoped tracing refactor
    removed (orphan spans that cannot be stitched into a request)."""

    SERVE = "src/repro/serve/engine.py"

    def _serve_rules(self, source: str, filename: str | None = None):
        import textwrap

        from repro.analysis.lint import lint_source

        return [f.rule for f in
                lint_source(textwrap.dedent(source),
                            filename=filename or self.SERVE)]

    def test_flags_guarded_span_with_no_context_evidence(self):
        assert self._serve_rules("""
            def handler(ticket):
                obs = current_obs_hook()
                if obs is not None:
                    obs.begin("serve.attempt", cat="serve")
                    obs.end()
            """) == ["FHC013"]

    def test_flags_record_and_span_verbs_too(self):
        assert self._serve_rules("""
            def handler(x):
                obs = current_obs_hook()
                if obs is not None:
                    obs.record("serve.queue", cat="serve", dur_ns=5)
            """) == ["FHC013"]

    def test_bind_trace_evidence_sanctions_the_span(self):
        assert self._serve_rules("""
            def handler(ticket):
                token = bind_trace(ticket.trace_ctx)
                try:
                    obs = current_obs_hook()
                    if obs is not None:
                        obs.begin("serve.attempt", cat="serve")
                        obs.end()
                finally:
                    unbind_trace(token)
            """) == []

    def test_current_trace_context_stamp_is_evidence(self):
        assert self._serve_rules("""
            def resume(path):
                obs = current_obs_hook()
                if obs is not None:
                    ctx = current_trace_context()
                    obs.begin("recover.resume", cat="recover",
                              trace=0 if ctx is None else ctx.trace_id)
            """, filename="src/repro/recover/executor.py") == []

    def test_begin_request_is_the_boundary_and_exempt(self):
        assert self._serve_rules("""
            def submit(req):
                obs = current_obs_hook()
                if obs is not None:
                    handle = obs.begin_request("serve.request", cat="serve")
                    obs.end_request(handle)
            """) == []

    def test_rule_scoped_to_serve_and_recover(self):
        source = """
            def handler(ticket):
                obs = current_obs_hook()
                if obs is not None:
                    obs.begin("phase", cat="model")
                    obs.end()
            """
        assert self._serve_rules(
            source, filename="src/repro/fhe/other.py") == []
        assert self._serve_rules(
            source, filename="src/repro/recover/executor.py") == ["FHC013"]

    def test_suppression_comment_applies(self):
        assert self._serve_rules("""
            def handler(ticket):
                obs = current_obs_hook()
                if obs is not None:
                    obs.begin("serve.attempt", cat="serve")  # fhecheck: ok=FHC013
                    obs.end()
            """) == []
