"""Unit tests for the interval domain underneath fhecheck."""

import pytest

from repro.analysis.intervals import U64_MAX, Interval, IntervalVec


class TestInterval:
    def test_constructors(self):
        assert Interval.const(7) == Interval(7, 7)
        assert Interval.reduced(10) == Interval(0, 9)
        assert Interval.upto(5) == Interval(0, 5)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Interval(3, 2)
        with pytest.raises(ValueError):
            Interval(-1, 2)

    def test_predicates(self):
        assert Interval(0, U64_MAX).fits_uint64
        assert not Interval(0, U64_MAX + 1).fits_uint64
        assert Interval(0, 9).within(9)
        assert not Interval(0, 10).within(9)

    def test_arithmetic_is_exact_python_int(self):
        q = (1 << 61) - 1
        big = Interval.reduced(q)
        prod = big.mul(big)
        assert prod.hi == (q - 1) ** 2  # no float rounding, no wrap

    def test_add_and_mod(self):
        a = Interval(2, 5).add(Interval(1, 3))
        assert a == Interval(3, 8)
        assert Interval(3, 8).mod(7) == Interval(0, 6)
        # A narrow interval that cannot cross the modulus keeps its shape.
        assert Interval(3, 5).mod(7) == Interval(3, 5)

    def test_sub_nonneg(self):
        d = Interval(10, 20).sub_nonneg(Interval(2, 4))
        assert d == Interval(6, 18)

    def test_cond_sub_models_wraparound_clamp(self):
        # np.minimum(x, x - t): below t -> unchanged; above -> subtract.
        assert Interval(0, 5).cond_sub(10) == Interval(0, 5)
        assert Interval(12, 15).cond_sub(10) == Interval(2, 5)
        # Straddling t: result covers both branches.
        mixed = Interval(5, 15).cond_sub(10)
        assert mixed.lo == 0 and mixed.hi == 9

    def test_cond_sub_detects_dropped_clamp_growth(self):
        """A value that was never clamped keeps its full magnitude —
        this is exactly how a dropped conditional subtract cascades into
        an overflow finding downstream."""
        q = 1 << 30
        unclamped = Interval(0, 4 * q - 1)
        # Clamping brings it under 2q; without the clamp the 4q bound
        # survives into the next product.
        assert unclamped.cond_sub(2 * q).hi <= 2 * q - 1
        assert unclamped.mul(Interval.reduced(q)).hi == \
            (4 * q - 1) * (q - 1)


class TestIntervalVec:
    def test_exact_and_lane_access(self):
        v = IntervalVec.exact([3, 1, 4])
        assert len(v) == 3
        assert v.lane(1) == Interval.const(1)
        assert v.max_hi == 4

    def test_every_and_interleave_roundtrip(self):
        v = IntervalVec.exact(range(8))
        even, odd = v.every(0, 2), v.every(1, 2)
        back = IntervalVec.interleave(even, odd)
        assert [back.lane(i) for i in range(8)] == \
            [v.lane(i) for i in range(8)]

    def test_permute_tracks_lanes(self):
        v = IntervalVec.exact([10, 20, 30, 40])
        rot = v.permute([1, 2, 3, 0])  # dst lane i <- src lane i+1
        assert [iv.lo for iv in rot.lanes()] == [20, 30, 40, 10]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IntervalVec.exact([1, 2]).add(IntervalVec.exact([1, 2, 3]))

    def test_mul_per_lane(self):
        a = IntervalVec.exact([2, 3])
        b = IntervalVec.exact([5, 7])
        assert [iv.hi for iv in a.mul(b).lanes()] == [10, 21]
