"""The benchmark regression sentinel: spec resolution, noise-aware
thresholds, best-of-group scoring, and the end-to-end gate.

The load-bearing assertions: a seeded 20% latency inflation fails the
full comparison (tolerance 15%) while a 10% wobble passes; portable
mode never applies wall-clock comparisons across hosts but still
catches speedup collapses, zero-invariant violations, and vanished
bit-identity flags; and a wildcard spec that resolves nothing is a
failure, not a vacuous pass.
"""

import copy
import json

import pytest

from repro.obs.export import host_envelope
from repro.obs.sentinel import (
    ARTIFACTS,
    BENCH_SPECS,
    REGEN_COMMANDS,
    MetricSpec,
    compare_envelopes,
    compare_files,
    run_sentinel,
)


def _serve_envelope() -> dict:
    env = host_envelope("serve")
    env["engine"] = {"error": 0, "integrity_failures": 0,
                     "degrade_steps": 0}
    env["results"] = {
        "latency_s": {"p50": 0.004, "p95": 0.080, "p99": 0.200},
        "throughput_rps": 5000.0,
        "goodput_rps": 3700.0,
    }
    return env


def _kernels_envelope() -> dict:
    env = host_envelope("kernel_batching")
    env["ntt"] = {"1024": {"bit_identical": True, "speedup": 2.4,
                           "speedup_compiled": 14.0, "batched_s": 0.001}}
    env["automorphism"] = {"1024": {"bit_identical": True, "speedup": 1.8,
                                    "batched_s": 0.0005}}
    env["keyswitch_small_params"] = {
        "bit_identical": True, "backends_bit_identical": True,
        "speedup": 4.0, "speedup_compiled": 11.0,
        "batched_s": 0.01, "compiled_s": 0.004,
    }
    return env


class TestLatencyThresholds:
    def test_twenty_percent_regression_fails(self):
        base = _serve_envelope()
        bad = copy.deepcopy(base)
        for key in ("p50", "p95", "p99"):
            bad["results"]["latency_s"][key] *= 1.20
        checks = compare_envelopes(base, [bad])
        failed = {c.path for c in checks if not c.ok}
        assert failed == {"results.latency_s.p50", "results.latency_s.p95",
                          "results.latency_s.p99"}

    def test_ten_percent_wobble_passes(self):
        base = _serve_envelope()
        noisy = copy.deepcopy(base)
        for key in ("p50", "p95", "p99"):
            noisy["results"]["latency_s"][key] *= 1.10
        noisy["results"]["throughput_rps"] *= 0.90
        assert all(c.ok for c in compare_envelopes(base, [noisy]))

    def test_throughput_collapse_fails(self):
        base = _serve_envelope()
        bad = copy.deepcopy(base)
        bad["results"]["throughput_rps"] *= 0.70
        failed = {c.path for c in checks_fail(base, bad)}
        assert "results.throughput_rps" in failed

    def test_latency_not_compared_in_portable_mode(self):
        base = _serve_envelope()
        bad = copy.deepcopy(base)
        bad["results"]["latency_s"]["p99"] *= 5.0  # different host: fine
        assert all(c.ok for c in
                   compare_envelopes(base, [bad], portable_only=True))

    def test_error_invariant_checked_in_portable_mode(self):
        base = _serve_envelope()
        bad = copy.deepcopy(base)
        bad["engine"]["error"] = 3
        failed = {c.path for c in
                  compare_envelopes(base, [bad], portable_only=True)
                  if not c.ok}
        assert failed == {"engine.error"}


def checks_fail(base: dict, cand: dict) -> list:
    return [c for c in compare_envelopes(base, [cand]) if not c.ok]


class TestBestOfGroup:
    def test_one_slow_candidate_cannot_fail_the_gate(self):
        """Best-of-group: a descheduled run is outvoted by a clean one."""
        base = _serve_envelope()
        slow = copy.deepcopy(base)
        slow["results"]["latency_s"]["p99"] *= 2.0
        clean = copy.deepcopy(base)
        assert all(c.ok for c in compare_envelopes(base, [slow, clean]))

    def test_consistent_regression_still_fails(self):
        base = _serve_envelope()
        bad1 = copy.deepcopy(base)
        bad2 = copy.deepcopy(base)
        for bad in (bad1, bad2):
            bad["results"]["latency_s"]["p99"] *= 1.25
        failed = [c for c in compare_envelopes(base, [bad1, bad2])
                  if not c.ok]
        assert any(c.path == "results.latency_s.p99" for c in failed)


class TestPortableKernelSpecs:
    def test_quick_candidate_passes_against_full_baseline(self):
        """The committed artifact has sizes up to 16384; the quick regen
        only emits 1024 — wildcards resolve against the candidate."""
        full = _kernels_envelope()
        full["ntt"]["16384"] = {"bit_identical": True, "speedup": 2.0,
                                "batched_s": 0.1}
        assert all(c.ok for c in compare_envelopes(
            full, [_kernels_envelope()], portable_only=True))

    def test_speedup_collapse_fails_floor(self):
        base = _kernels_envelope()
        bad = copy.deepcopy(base)
        bad["ntt"]["1024"]["speedup"] = 1.01
        failed = [c for c in
                  compare_envelopes(base, [bad], portable_only=True)
                  if not c.ok]
        assert any("floor" in c.detail for c in failed)

    def test_lost_bit_identity_fails(self):
        base = _kernels_envelope()
        bad = copy.deepcopy(base)
        bad["keyswitch_small_params"]["bit_identical"] = False
        failed = {c.path for c in
                  compare_envelopes(base, [bad], portable_only=True)
                  if not c.ok}
        assert "keyswitch_small_params.bit_identical" in failed

    def test_missing_compiled_columns_are_optional(self):
        base = _kernels_envelope()
        nocc = copy.deepcopy(base)
        for section in (nocc["ntt"]["1024"],
                        nocc["keyswitch_small_params"]):
            section.pop("speedup_compiled", None)
        nocc["keyswitch_small_params"]["backends_bit_identical"] = None
        assert all(c.ok for c in
                   compare_envelopes(base, [nocc], portable_only=True))

    def test_vanished_section_is_not_a_vacuous_pass(self):
        base = _kernels_envelope()
        gone = copy.deepcopy(base)
        gone.pop("ntt")
        failed = [c for c in
                  compare_envelopes(base, [gone], portable_only=True)
                  if not c.ok]
        assert any("resolved 0" in c.detail for c in failed)


class TestZeroAndExact:
    def test_missing_key_counts_as_zero(self):
        env = host_envelope("faults")
        env["detection_rate_live"] = 1.0
        env["outcomes"] = {"detected": 10}
        env["injections"] = 10
        checks = compare_envelopes(env, [copy.deepcopy(env)],
                                   portable_only=True)
        zero = [c for c in checks if c.path == "outcomes.silent"]
        assert zero and zero[0].ok

    def test_nonzero_silent_fails(self):
        env = host_envelope("faults")
        env["detection_rate_live"] = 1.0
        env["outcomes"] = {"detected": 10}
        bad = copy.deepcopy(env)
        bad["outcomes"]["silent"] = 1
        failed = {c.path for c in
                  compare_envelopes(env, [bad], portable_only=True)
                  if not c.ok}
        assert "outcomes.silent" in failed

    def test_detection_rate_floor(self):
        env = host_envelope("faults")
        env["detection_rate_live"] = 1.0
        env["outcomes"] = {}
        bad = copy.deepcopy(env)
        bad["detection_rate_live"] = 0.80
        failed = {c.path for c in
                  compare_envelopes(env, [bad], portable_only=True)
                  if not c.ok}
        assert "detection_rate_live" in failed

    def test_exact_counts_full_mode_only(self):
        env = host_envelope("faults")
        env["detection_rate_live"] = 1.0
        env["outcomes"] = {"detected": 53, "corrected": 60}
        env["injections"] = 200
        smoke = copy.deepcopy(env)
        smoke["injections"] = 24  # different campaign scale
        smoke["outcomes"]["detected"] = 7
        smoke["outcomes"]["corrected"] = 60
        assert all(c.ok for c in
                   compare_envelopes(env, [smoke], portable_only=True))
        assert {c.path for c in checks_fail(env, smoke)} == {
            "injections", "outcomes.detected"}


class TestSpecTables:
    def test_every_committed_artifact_has_specs_and_a_regen_command(self):
        assert set(ARTIFACTS.values()) == set(BENCH_SPECS)
        assert set(ARTIFACTS.values()) == set(REGEN_COMMANDS)

    def test_every_spec_resolves_in_its_committed_artifact(self, repo_root):
        """Required portable specs must match the committed baselines —
        a renamed metric key must fail loudly here, not silently skip."""
        for name, bench in ARTIFACTS.items():
            baseline = json.loads((repo_root / name).read_text())
            checks = compare_envelopes(baseline, [baseline],
                                       portable_only=True)
            bad = [c for c in checks if not c.ok]
            assert not bad, f"{name}: {[(c.path, c.detail) for c in bad]}"

    def test_latency_tolerance_is_tighter_than_the_gate(self):
        """The seeded-regression acceptance (20%) must exceed the
        latency tolerance, or the sentinel could never catch it."""
        assert MetricSpec("x", "latency").tol < 0.20


@pytest.fixture
def repo_root():
    import pathlib

    import repro

    return pathlib.Path(repro.__file__).resolve().parents[2]


class TestEndToEnd:
    def test_compare_files_seeded_regression_exits_nonzero(
            self, tmp_path, repo_root):
        """The acceptance gate: a 20% latency inflation of the committed
        serve artifact must fail the full file-level comparison."""
        baseline_path = repo_root / "BENCH_serve.json"
        baseline = json.loads(baseline_path.read_text())
        bad = copy.deepcopy(baseline)
        for key in ("p50", "p95", "p99"):
            bad["results"]["latency_s"][key] *= 1.20
        bad_path = tmp_path / "candidate.json"
        bad_path.write_text(json.dumps(bad))
        checks = compare_files(baseline_path, [bad_path])
        assert any(not c.ok for c in checks)
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "--sentinel",
             "--baseline", str(baseline_path),
             "--candidate", str(bad_path),
             "--report", str(tmp_path / "report.json")],
            cwd=repo_root, capture_output=True, text=True,
            env={**__import__("os").environ,
                 "PYTHONPATH": str(repo_root / "src")})
        assert proc.returncode != 0, proc.stdout + proc.stderr
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["ok"] is False
        assert report["bench"] == "sentinel"

    def test_run_sentinel_without_regen_validates_committed(
            self, tmp_path, repo_root):
        report_path = tmp_path / "SENTINEL_report.json"
        result = run_sentinel(repo_root, regen=False,
                              report_path=report_path,
                              log=lambda *_: None)
        assert result.ok
        report = json.loads(report_path.read_text())
        assert report["schema"] == 1
        assert {a["file"] for a in report["artifacts"]} == set(ARTIFACTS)

    def test_run_sentinel_flags_missing_artifact(self, tmp_path):
        result = run_sentinel(tmp_path, regen=False, log=lambda *_: None)
        assert not result.ok
