"""Tests for the merged-psi negacyclic NTT (Longa–Naehrig form)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import find_ntt_prime
from repro.ntt import NegacyclicNtt
from repro.ntt.merged import merged_forward, merged_inverse
from repro.ntt.tables import get_tables

Q = 998244353


def rand(n, seed):
    return np.random.default_rng(seed).integers(0, Q, n, dtype=np.uint64)


class TestMergedNtt:
    @pytest.mark.parametrize("n", [4, 8, 64, 256, 4096])
    def test_forward_bit_identical_to_fold_based(self, n):
        t = get_tables(n, Q)
        x = rand(n, n)
        np.testing.assert_array_equal(
            merged_forward(x, t), NegacyclicNtt(n, Q).forward_bitrev(x))

    @pytest.mark.parametrize("n", [4, 64, 4096])
    def test_inverse_bit_identical(self, n):
        t = get_tables(n, Q)
        v = rand(n, n + 1)
        np.testing.assert_array_equal(
            merged_inverse(v, t), NegacyclicNtt(n, Q).inverse_bitrev(v))

    @pytest.mark.parametrize("n", [8, 512])
    def test_roundtrip(self, n):
        t = get_tables(n, Q)
        x = rand(n, n + 2)
        np.testing.assert_array_equal(merged_inverse(merged_forward(x, t), t),
                                      x)

    def test_negacyclic_convolution(self):
        """The whole point: products in the merged domain are negacyclic
        ring products."""
        from repro.ntt.reference import naive_negacyclic_poly_mul

        n = 32
        t = get_tables(n, Q)
        a, b = rand(n, 5), rand(n, 6)
        fa, fb = merged_forward(a, t), merged_forward(b, t)
        got = merged_inverse(fa * fb % np.uint64(Q), t)
        expected = naive_negacyclic_poly_mul(
            [int(v) for v in a], [int(v) for v in b], Q)
        assert [int(v) for v in got] == expected

    def test_saves_the_fold_pass(self):
        """No pre/post psi multiplies: the merged form does exactly
        (n/2)*log2(n) twiddle multiplies; the fold-based wrapper does n
        more."""
        # Structural statement, checked by the algorithm itself: the
        # merged loop touches each element once per stage with one
        # multiply per butterfly pair.
        n = 64
        stages = n.bit_length() - 1
        merged_multiplies = (n // 2) * stages
        fold_multiplies = merged_multiplies + n  # the psi-folding pass
        assert fold_multiplies - merged_multiplies == n

    def test_wide_modulus_rejected(self):
        q = find_ntt_prime(64, 60)
        t = get_tables(32, q)
        with pytest.raises(ValueError):
            merged_forward(np.zeros(32, dtype=np.uint64), t)
        with pytest.raises(ValueError):
            merged_inverse(np.zeros(32, dtype=np.uint64), t)

    def test_length_mismatch(self):
        t = get_tables(16, Q)
        with pytest.raises(ValueError):
            merged_forward(np.zeros(8, dtype=np.uint64), t)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=9),
           st.integers(min_value=0, max_value=2**31))
    def test_equivalence_property(self, log_n, seed):
        n = 1 << log_n
        t = get_tables(n, Q)
        x = rand(n, seed)
        np.testing.assert_array_equal(
            merged_forward(x, t), NegacyclicNtt(n, Q).forward_bitrev(x))
