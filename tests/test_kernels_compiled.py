"""The compiled fused-kernel backend (:mod:`repro.kernels`).

Three-way **bit-equality** is the contract under test: for every
kernel (forward/inverse NTT batch, automorphism batch, the fused
keyswitch inner product) the compiled backend must agree bit for bit
with both the numpy reference and the behavioral VPU, across the
boundary-modulus regimes the analyzer gates distinguish — and with no
JIT provider at all it must degrade to the inherited numpy path, still
bit-identically.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.arith.primes import find_ntt_prime, find_ntt_primes, is_prime
from repro.fhe.backend import (
    IntegrityBackend,
    NumpyBackend,
    VpuBackend,
    backend_from_env,
    clear_caches,
    use_backend,
)
from repro.kernels import CompiledBackend, get_plan, plan_cache
from repro.kernels.provider import resolve_provider
from repro.obs import Observer, install_obs_hook

N = 64
LOG_N = 6
LIMBS = 3


def _prime_just_above(order: int, floor: int) -> int:
    q = floor + 1 + (-floor % order)
    while not (q % order == 1 and is_prime(q)):
        q += order
    return q


@pytest.fixture(scope="module")
def boundary_primes():
    return {
        "below_2^30": find_ntt_prime(2 * N, 30),
        "above_2^30": _prime_just_above(2 * N, 1 << 30),
        "below_2^31": find_ntt_prime(2 * N, 31),
    }


@pytest.fixture(scope="module")
def compiled():
    backend = CompiledBackend()
    if backend.provider_name is None:
        pytest.skip("no JIT provider available (numba or a C compiler)")
    return backend


def _rows(primes, seed=7):
    rng = np.random.default_rng(seed)
    return rng.integers(0, min(primes), size=(len(primes), N),
                        dtype=np.uint64)


class TestThreeWayBitEquality:
    """compiled == numpy == VPU, per boundary-modulus regime."""

    @pytest.mark.parametrize("regime", ["below_2^30", "above_2^30",
                                        "below_2^31"])
    def test_forward_inverse_ntt(self, compiled, boundary_primes, regime):
        q = boundary_primes[regime]
        primes = tuple(
            find_ntt_primes(2 * N, q.bit_length(), LIMBS)
            if regime != "above_2^30" else [q] * 1)
        x = _rows(primes)
        fwd = {}
        inv = {}
        for backend in (compiled, NumpyBackend(), VpuBackend(m=16)):
            with use_backend(backend):
                fwd[backend.name] = backend.forward_ntt_batch(x, primes)
                inv[backend.name] = backend.inverse_ntt_batch(
                    fwd[backend.name], primes)
        assert np.array_equal(fwd["compiled"], fwd["numpy"])
        assert np.array_equal(fwd["compiled"], fwd["vpu"])
        assert np.array_equal(inv["compiled"], inv["numpy"])
        assert np.array_equal(inv["compiled"], x)

    def test_automorphism_batch(self, compiled, boundary_primes):
        primes = tuple(find_ntt_primes(2 * N, 29, LIMBS))
        x = compiled.forward_ntt_batch(_rows(primes), primes)
        for k in (5, 2 * N - 1):
            a_c = compiled.automorphism_eval_batch(x, k, primes)
            a_n = NumpyBackend().automorphism_eval_batch(x, k, primes)
            a_v = VpuBackend(m=16).automorphism_eval_batch(x, k, primes)
            assert np.array_equal(a_c, a_n)
            assert np.array_equal(a_c, a_v)

    def test_wide_modulus_falls_back_to_object_path(self, compiled):
        # q >= 2**32: no compiled plan exists; the inherited numpy path
        # (object-dtype per-row) must serve the batch bit-identically.
        q = _prime_just_above(2 * N, 1 << 32)
        primes = (q,)
        x = _rows(primes)
        plan = get_plan(N, primes)
        assert not plan.lazy_stages_ok
        before = compiled.fallbacks
        out = compiled.forward_ntt_batch(x, primes)
        assert compiled.fallbacks > before
        assert np.array_equal(out, NumpyBackend().forward_ntt_batch(x, primes))

    def test_full_keyswitch_three_backends(self, compiled):
        from repro.fhe.ckks import CkksContext
        from repro.fhe.keyswitch import apply_keyswitch
        from repro.fhe.params import toy_params

        ctx = CkksContext(toy_params(), seed=33)
        x = ctx.encrypt(np.random.default_rng(3).uniform(
            -1, 1, ctx.params.slots)).parts[1]
        results = {}
        for backend in (NumpyBackend(), compiled, VpuBackend(m=16)):
            with use_backend(backend):
                t0, t1 = apply_keyswitch(x, ctx.relin_key, ctx.params)
            results[backend.name] = (t0.residues, t1.residues)
        for name in ("compiled", "vpu"):
            assert np.array_equal(results[name][0], results["numpy"][0])
            assert np.array_equal(results[name][1], results["numpy"][1])


class TestKeyswitchInnerProduct:
    def test_matches_reference_lazy_and_reduced(self, compiled):
        rng = np.random.default_rng(11)
        for bits in (29, 31):  # lazy gate holds at 29, refuses at 31
            primes = tuple(find_ntt_primes(2 * N, bits, LIMBS))
            q_arr = np.array(primes, dtype=np.uint64)
            shape = (4, LIMBS, N)
            d = rng.integers(0, min(primes), size=shape, dtype=np.uint64)
            b = rng.integers(0, min(primes), size=shape, dtype=np.uint64)
            a = rng.integers(0, min(primes), size=shape, dtype=np.uint64)
            acc0, acc1 = compiled.keyswitch_inner_product(d, b, a, primes)
            ref0 = (d * b % q_arr[None, :, None]).sum(
                axis=0, dtype=np.uint64) % q_arr[:, None]
            ref1 = (d * a % q_arr[None, :, None]).sum(
                axis=0, dtype=np.uint64) % q_arr[:, None]
            assert np.array_equal(acc0, ref0)
            assert np.array_equal(acc1, ref1)

    def test_refuses_wide_single_products(self, compiled):
        q = _prime_just_above(2 * N, 1 << 33)
        z = np.zeros((1, 1, N), dtype=np.uint64)
        with pytest.raises(ValueError, match="fit uint64"):
            compiled.keyswitch_inner_product(z, z, z, (q,))

    def test_providerless_fallback_matches(self):
        backend = CompiledBackend(provider="none")
        assert backend.provider_name is None
        rng = np.random.default_rng(5)
        primes = tuple(find_ntt_primes(2 * N, 29, LIMBS))
        q_arr = np.array(primes, dtype=np.uint64)
        shape = (3, LIMBS, N)
        d = rng.integers(0, min(primes), size=shape, dtype=np.uint64)
        b = rng.integers(0, min(primes), size=shape, dtype=np.uint64)
        a = rng.integers(0, min(primes), size=shape, dtype=np.uint64)
        acc0, _ = backend.keyswitch_inner_product(d, b, a, primes)
        ref0 = (d * b % q_arr[None, :, None]).sum(
            axis=0, dtype=np.uint64) % q_arr[:, None]
        assert np.array_equal(acc0, ref0)


class TestProviderlessFallback:
    """provider='none' must reproduce the numpy path bit for bit."""

    def test_ntt_and_automorphism(self):
        backend = CompiledBackend(provider="none")
        primes = tuple(find_ntt_primes(2 * N, 29, LIMBS))
        x = _rows(primes)
        reference = NumpyBackend()
        assert np.array_equal(backend.forward_ntt_batch(x, primes),
                              reference.forward_ntt_batch(x, primes))
        f = reference.forward_ntt_batch(x, primes)
        assert np.array_equal(backend.inverse_ntt_batch(f, primes),
                              reference.inverse_ntt_batch(f, primes))
        assert np.array_equal(
            backend.automorphism_eval_batch(f, 5, primes),
            reference.automorphism_eval_batch(f, 5, primes))
        assert backend.fallbacks >= 3
        assert backend.kernel_invocations == 0

    def test_unknown_provider_name_rejected(self):
        with pytest.raises(ValueError, match="REPRO_JIT"):
            CompiledBackend(provider="bogus")
        with pytest.raises(ValueError, match="REPRO_JIT"):
            resolve_provider("bogus")


class TestSelection:
    def test_backend_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        assert backend_from_env().name == "compiled"
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert backend_from_env().name == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "vpu")
        assert backend_from_env().name == "vpu"
        monkeypatch.delenv("REPRO_BACKEND")
        assert backend_from_env().name == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            backend_from_env()

    def test_import_time_bogus_env_warns_not_raises(self):
        code = ("import warnings\n"
                "with warnings.catch_warnings(record=True) as w:\n"
                "    warnings.simplefilter('always')\n"
                "    from repro.fhe.backend import get_backend\n"
                "    assert get_backend().name == 'numpy'\n"
                "    assert any('REPRO_BACKEND' in str(x.message)"
                " for x in w)\n")
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "REPRO_BACKEND": "bogus",
                 "PYTHONPATH": os.pathsep.join(sys.path)},
            capture_output=True, text=True)
        assert result.returncode == 0, result.stderr

    def test_integrity_backend_wraps_compiled(self, compiled):
        wrapped = IntegrityBackend(inner=compiled)
        primes = tuple(find_ntt_primes(2 * N, 29, LIMBS))
        x = _rows(primes)
        out = wrapped.forward_ntt_batch(x, primes)
        assert np.array_equal(out, NumpyBackend().forward_ntt_batch(x, primes))


class TestCachesAndObs:
    def test_clear_caches_resets_plan_cache(self, compiled):
        primes = tuple(find_ntt_primes(2 * N, 29, LIMBS))
        compiled.forward_ntt_batch(_rows(primes), primes)
        compiled.forward_ntt_batch(_rows(primes, seed=8), primes)
        assert compiled.plan_cache_hits >= 1
        assert compiled.plan_cache_misses >= 1
        clear_caches()  # module-level clear reaches the kernels package
        assert compiled.plan_cache_hits == 0
        assert compiled.plan_cache_misses == 0
        assert len(plan_cache()) == 0

    def test_plan_cache_gauges_published(self, compiled):
        compiled.clear_caches()
        primes = tuple(find_ntt_primes(2 * N, 29, LIMBS))
        observer = Observer()
        previous = install_obs_hook(observer)
        try:
            compiled.forward_ntt_batch(_rows(primes), primes)
            compiled.forward_ntt_batch(_rows(primes, seed=9), primes)
        finally:
            install_obs_hook(previous)
        snapshot = observer.metrics.snapshot()
        gauges = snapshot["gauges"]
        assert gauges["backend.compiled_plan_cache.misses"] == 1
        assert gauges["backend.compiled_plan_cache.hits"] == 1
        assert gauges["backend.compiled_plan_cache.size"] == 1
        assert snapshot["counters"]["backend.compiled.kernels.ntt"] == 2

    def test_obs_off_is_exact_noop(self, compiled):
        # No hook installed: dispatch must not touch any registry.
        primes = tuple(find_ntt_primes(2 * N, 29, LIMBS))
        out = compiled.forward_ntt_batch(_rows(primes), primes)
        assert out is not None


class TestSelfCheck:
    def test_broken_provider_raises(self):
        class _Broken:
            name = "broken"

            def fwd_ntt(self, plan, x, out, work, use_shoup):
                out[:] = 0

        backend = CompiledBackend(provider=_Broken(), self_check=True)
        primes = tuple(find_ntt_primes(2 * N, 29, LIMBS))
        with pytest.raises(RuntimeError, match="self-check failed"):
            backend.forward_ntt_batch(_rows(primes), primes)

    def test_self_check_runs_once_per_shape(self, compiled):
        compiled.clear_caches()
        primes = tuple(find_ntt_primes(2 * N, 29, LIMBS))
        before = compiled.self_checks
        compiled.forward_ntt_batch(_rows(primes), primes)
        compiled.forward_ntt_batch(_rows(primes, seed=10), primes)
        assert compiled.self_checks == before + 1
