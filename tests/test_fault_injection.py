"""The fault-injection engine: hook transparency and per-site behavior."""

import numpy as np
import pytest

from repro.accel.dram import DramModel
from repro.accel.sram import OnChipSram
from repro.arith.primes import find_ntt_prime
from repro.core.stages import MuxConflictError
from repro.fault.injector import (
    FaultInjector,
    FaultSpec,
    current_fault_hook,
    install_fault_hook,
    use_fault_hook,
)
from repro.fhe.backend import NumpyBackend, VpuBackend

N = 64
M = 16
Q = find_ntt_prime(2 * N, 28)


def _input(seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, Q, size=N, dtype=np.uint64)


def _golden(x: np.ndarray) -> np.ndarray:
    return NumpyBackend().forward_ntt(x, Q)


def _run_with(spec: "FaultSpec | None") -> tuple[np.ndarray, FaultInjector,
                                                 VpuBackend]:
    backend = VpuBackend(M)
    injector = FaultInjector(() if spec is None else [spec])
    backend.vpu.install_fault_hook(injector)
    out = backend.forward_ntt(_input(), Q)
    return out, injector, backend


class TestDormantHooks:
    def test_dormant_hook_is_bit_exact_and_cycle_exact(self):
        x = _input()
        plain = VpuBackend(M)
        base = plain.forward_ntt(x, Q)
        out, injector, hooked = _run_with(None)
        assert np.array_equal(base, out)
        # A hook with no specs must not change the modeled cycle count.
        assert hooked.vpu.stats.cycles == plain.vpu.stats.cycles
        assert injector.cycles == plain.vpu.stats.cycles
        assert injector.fired == []

    def test_no_hook_matches_numpy(self):
        x = _input()
        assert np.array_equal(VpuBackend(M).forward_ntt(x, Q), _golden(x))


class TestAluFaults:
    def test_stuck_bit_corrupts_output(self):
        spec = FaultSpec("alu", "stuck1", cycle=0, bit=33, lane=3)
        out, injector, _ = _run_with(spec)
        assert injector.fired == [spec]
        assert not np.array_equal(out, _golden(_input()))
        assert injector.exposures["alu"] > 0

    def test_transient_fires_exactly_once(self):
        spec = FaultSpec("alu", "transient", cycle=2, bit=5, lane=0)
        backend = VpuBackend(M)
        injector = FaultInjector([spec])
        backend.vpu.install_fault_hook(injector)
        backend.forward_ntt(_input(), Q)
        assert injector.fired == [spec]
        # One-shot: a second run on the same injector stays clean.
        clean = backend.forward_ntt(_input(), Q)
        assert np.array_equal(clean, _golden(_input()))


class TestStateFaults:
    def test_regfile_bitflip_lands_once(self):
        # Sweep arming cycles until the flip lands in live state.
        for cycle in range(1, 40):
            spec = FaultSpec("regfile", "bitflip", cycle=cycle, bit=27,
                             word=0, lane=1)
            out, injector, _ = _run_with(spec)
            if injector.fired and not np.array_equal(out, _golden(_input())):
                return
        pytest.fail("no register-file bitflip perturbed the output")

    def test_sram_bitflip_lands(self):
        for cycle in range(0, 20):
            spec = FaultSpec("sram", "bitflip", cycle=cycle, bit=13,
                             word=1, lane=4)
            out, injector, _ = _run_with(spec)
            if injector.fired and not np.array_equal(out, _golden(_input())):
                return
        pytest.fail("no scratchpad bitflip perturbed the output")

    def test_memory_stuck_read(self):
        spec = FaultSpec("sram", "stuck1", cycle=0, bit=34, word=0, lane=0)
        out, injector, _ = _run_with(spec)
        assert injector.fired == [spec]
        assert not np.array_equal(out, _golden(_input()))


class TestNetworkFaults:
    def test_control_word_flip_changes_routing(self):
        # Bit 2 is the first shift group bit of the control word.
        spec = FaultSpec("network", "bitflip", cycle=0, bit=2)
        out, injector, _ = _run_with(spec)
        assert injector.fired == [spec]
        assert not np.array_equal(out, _golden(_input()))

    def test_raw_mux_select_breaks_bijection(self):
        # Forcing one lane's select without its co-controlled partner is
        # two sources driving one lane: the stage model raises.
        spec = FaultSpec("network", "stuck1", cycle=0, bit=0, word=1, lane=0)
        backend = VpuBackend(M)
        backend.vpu.install_fault_hook(FaultInjector([spec]))
        with pytest.raises(MuxConflictError):
            backend.forward_ntt(_input(), Q)

    def test_stuck_agreeing_with_line_is_masked(self):
        # CG-DIF is active during DIF stages; stuck1 on its line agrees.
        spec = FaultSpec("network", "stuck1", cycle=0, bit=1)
        out, injector, _ = _run_with(spec)
        assert np.array_equal(out, _golden(_input())) or injector.fired


class TestBufferFaults:
    def test_dram_transfer_corruption(self):
        model = DramModel()
        buf = np.arange(16, dtype=np.uint64)
        injector = FaultInjector(
            [FaultSpec("dram", "bitflip", cycle=0, bit=5, lane=3)])
        out, ns = model.transfer(buf, injector)
        assert ns > 0
        assert out[3] == buf[3] ^ np.uint64(1 << 5)
        assert np.array_equal(np.delete(out, 3), np.delete(buf, 3))
        assert buf[3] == 3  # the source buffer is untouched

    def test_dram_without_hook_is_identity(self):
        buf = np.arange(16, dtype=np.uint64)
        out, _ = DramModel().transfer(buf)
        assert np.array_equal(out, buf)

    def test_sram_stage_corruption(self):
        sram = OnChipSram()
        sram.fault_hook = FaultInjector(
            [FaultSpec("sram", "stuck1", cycle=0, bit=2, lane=1)])
        buf = np.zeros(8, dtype=np.uint64)
        out, cycles = sram.stage(buf)
        assert cycles >= 1
        assert out[1] == 4 and out[0] == 0

    def test_buffer_op_arming(self):
        # cycle counts staging operations on the site, not VPU cycles.
        model = DramModel()
        injector = FaultInjector(
            [FaultSpec("dram", "transient", cycle=1, bit=0, lane=0)])
        buf = np.zeros(4, dtype=np.uint64)
        first, _ = model.transfer(buf, injector)
        second, _ = model.transfer(buf, injector)
        assert np.array_equal(first, buf)
        assert second[0] == 1


class TestSpecsAndHookRegistry:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("turbo", "bitflip", 0, 0)
        with pytest.raises(ValueError):
            FaultSpec("alu", "melt", 0, 0)
        with pytest.raises(ValueError):
            FaultSpec("alu", "bitflip", 0, 64)
        with pytest.raises(ValueError):
            FaultSpec("alu", "bitflip", -1, 0)
        # Network faults index control lines and may exceed 64.
        FaultSpec("network", "bitflip", 0, 70)

    def test_global_hook_registry(self):
        injector = FaultInjector(())
        assert current_fault_hook() is None
        previous = install_fault_hook(injector)
        assert previous is None
        assert current_fault_hook() is injector
        install_fault_hook(None)
        with use_fault_hook(injector):
            assert current_fault_hook() is injector
        assert current_fault_hook() is None

    def test_spec_to_dict_round_trip(self):
        spec = FaultSpec("alu", "stuck0", cycle=9, bit=3, word=1, lane=2)
        assert FaultSpec(**spec.to_dict()) == spec
