"""Def-use dataflow verification of VPU micro-programs (fhecheck D rules)."""

from dataclasses import dataclass

import pytest

import repro.analysis.dataflow as dataflow_mod
from repro.analysis.dataflow import check_dataflow
from repro.arith.primes import find_ntt_prime
from repro.core.isa import (
    Instruction,
    Load,
    NetworkPass,
    Program,
    Store,
    VAdd,
    VMulTwiddle,
)
from repro.core.network import NetworkConfig


def _prog(*instrs: Instruction, label: str = "synthetic") -> Program:
    return Program(instructions=list(instrs), label=label)


def _error_rules(report) -> list[str]:
    return [f.rule for f in report.findings.errors]


def _all_rules(report) -> list[str]:
    return [f.rule for f in report.findings]


class TestCleanPrograms:
    def test_minimal_load_compute_store(self):
        report = check_dataflow(_prog(
            Load(dst=0, addr=0),
            Load(dst=1, addr=8),
            VAdd(dst=2, a=0, b=1),
            Store(src=2, addr=0),
        ), m=16)
        assert report.ok
        assert report.findings.findings == []
        assert report.registers_written == 3
        assert report.dead_at_exit == 0

    def test_in_place_update_is_not_a_finding(self):
        # dst == src is the normal CG NTT stage idiom.
        report = check_dataflow(_prog(
            Load(dst=0, addr=0),
            VAdd(dst=0, a=0, b=0),
            Store(src=0, addr=0),
        ), m=16)
        assert report.ok and not report.findings.findings

    def test_compiled_negacyclic_ntt_is_clean(self):
        from repro.mapping.ntt import compile_negacyclic_intt, \
            compile_negacyclic_ntt

        q = find_ntt_prime(512, 28)
        for program in (compile_negacyclic_ntt(256, 16, q),
                        compile_negacyclic_intt(256, 16, q)):
            report = check_dataflow(program, m=16)
            assert report.ok, list(report.findings)
            assert report.dead_at_exit == 0

    def test_compiled_automorphism_is_clean(self):
        from repro.automorphism.mapping import (
            galois_element_for_rotation,
            galois_eval_permutation,
        )
        from repro.mapping import compile_automorphism

        perm = galois_eval_permutation(
            256, galois_element_for_rotation(256, 1))
        report = check_dataflow(compile_automorphism(perm, 16), m=16)
        assert report.ok and report.dead_at_exit == 0


class TestD001UninitializedRead:
    def test_read_before_any_write(self):
        report = check_dataflow(_prog(Store(src=7, addr=0)), m=16)
        assert _error_rules(report) == ["D001"]
        assert "r7" in report.findings.errors[0].message

    def test_deduped_per_register(self):
        # One compiler bug -> one finding, not a cascade.
        report = check_dataflow(_prog(
            Store(src=7, addr=0),
            Store(src=7, addr=8),
        ), m=16)
        assert _error_rules(report) == ["D001"]


class TestD002DeadWrite:
    def test_overwrite_without_read_is_a_warning(self):
        report = check_dataflow(_prog(
            Load(dst=0, addr=0),
            Load(dst=0, addr=8),
            Store(src=0, addr=0),
        ), m=16)
        assert _all_rules(report) == ["D002"]
        assert report.ok  # warnings never gate

    def test_unread_at_exit_is_a_warning(self):
        report = check_dataflow(_prog(Load(dst=0, addr=0)), m=16)
        assert _all_rules(report) == ["D002"]
        assert report.dead_at_exit == 1


class TestD003RoutingPermutation:
    def test_broken_route_table_flagged(self, monkeypatch):
        # The real network only produces permutations; force a mux fault.
        monkeypatch.setattr(dataflow_mod, "_route_table",
                            lambda m, config: [0] * m)
        report = check_dataflow(_prog(
            Load(dst=0, addr=0),
            NetworkPass(dst=1, src=0, config=NetworkConfig()),
            Store(src=1, addr=0),
        ), m=16)
        assert _error_rules(report) == ["D003"]

    def test_real_network_routes_are_permutations(self):
        report = check_dataflow(_prog(
            Load(dst=0, addr=0),
            NetworkPass(dst=1, src=0, config=NetworkConfig(cg="dit")),
            Store(src=1, addr=0),
        ), m=16)
        assert report.ok


class TestD004DiagonalHazard:
    def test_destination_inside_source_window(self):
        loads = [Load(dst=r, addr=8 * r) for r in range(4)]
        report = check_dataflow(_prog(
            *loads,
            NetworkPass(dst=2, src=0, config=NetworkConfig(),
                        src_rot=0, src_window=4),
            Store(src=2, addr=0),
        ), m=16)
        assert "D004" in _error_rules(report)

    def test_destination_outside_window_is_clean(self):
        loads = [Load(dst=r, addr=8 * r) for r in range(4)]
        report = check_dataflow(_prog(
            *loads,
            NetworkPass(dst=8, src=0, config=NetworkConfig(),
                        src_rot=0, src_window=4),
            Store(src=8, addr=0),
            *[Store(src=r, addr=64 + 8 * r) for r in range(1, 4)],
        ), m=16)
        assert report.ok, list(report.findings)


class TestD005PortBudget:
    def test_three_read_ports_flagged(self):
        @dataclass(frozen=True)
        class FakeWideRead(Instruction):
            def read_regs(self):
                return [0, 1, 2]

            def write_regs(self):
                return [3]

        loads = [Load(dst=r, addr=8 * r) for r in range(3)]
        report = check_dataflow(
            _prog(*loads, FakeWideRead(), Store(src=3, addr=0)), m=16)
        assert "D005" in _error_rules(report)

    def test_twiddle_stream_port_is_not_a_data_read(self):
        # VMulTwiddle's port model reads [a, dst] (dst carries the
        # twiddle stream port), but only `a` is a dataflow read — the
        # walk must not demand dst be initialized.
        report = check_dataflow(_prog(
            Load(dst=0, addr=0),
            VMulTwiddle(dst=1, a=0, twiddles=tuple(range(16))),
            Store(src=1, addr=0),
        ), m=16)
        assert report.ok, list(report.findings)


class TestValidation:
    def test_lane_count_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            check_dataflow(_prog(), m=12)
