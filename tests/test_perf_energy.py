"""Tests for the dynamic-energy model and its agreement with the static
power model."""

import numpy as np
import pytest

from repro.core import VectorProcessingUnit
from repro.hwmodel import our_network_cost, vpu_cost
from repro.mapping import compile_ntt, pack_for_ntt, required_registers
from repro.mapping.automorphism import compile_automorphism
from repro.mapping import automorphism_layout_pack
from repro.automorphism import paper_sigma
from repro.perf.energy import estimate_program_energy, per_cycle_energies

Q = 998244353


def run_ntt(m, n):
    vpu = VectorProcessingUnit(m=m, q=Q,
                               regfile_entries=required_registers(m),
                               memory_rows=2 * n // m)
    vpu.memory.data[:n // m] = pack_for_ntt(
        np.random.default_rng(0).integers(0, Q, n, dtype=np.uint64), m)
    return vpu.run_fresh(compile_ntt(n, m, Q))


class TestEnergyModel:
    def test_per_cycle_energies_positive(self):
        e = per_cycle_energies(64)
        assert all(v > 0 for v in e.values())

    def test_breakdown_sums(self):
        stats = run_ntt(16, 256)
        report = estimate_program_energy(stats, 16)
        parts = (report.network_pj + report.multiplier_pj + report.adder_pj
                 + report.regfile_pj + report.memory_pj)
        assert report.total_pj == pytest.approx(parts)
        assert report.total_pj > 0

    def test_ntt_average_power_near_static_model(self):
        """Closing the loop: integrating per-instruction energies over an
        executed NTT must land near the static VPU power (the static
        number assumes the paper's ~80% utilization, so agreement within
        2x is the expected band)."""
        m = 64
        stats = run_ntt(m, 4096)
        report = estimate_program_energy(stats, m)
        static = vpu_cost(m, our_network_cost(m)).power_mw
        assert 0.3 * static < report.average_power_mw < 2.0 * static

    def test_automorphism_cheaper_than_ntt(self):
        """Per element moved, the single-pass automorphism burns less
        energy than an NTT stage (no butterflies)."""
        m, n = 64, 4096
        ntt_stats = run_ntt(m, n)
        vpu = VectorProcessingUnit(m=m, q=Q, memory_rows=2 * n // m)
        x = np.random.default_rng(1).integers(0, Q, n, dtype=np.uint64)
        vpu.memory.data[:n // m] = automorphism_layout_pack(x, m)
        autom_stats = vpu.run_fresh(compile_automorphism(paper_sigma(n, 3), m))
        ntt_energy = estimate_program_energy(ntt_stats, m).total_pj
        autom_energy = estimate_program_energy(autom_stats, m).total_pj
        assert autom_energy < ntt_energy / 5

    def test_network_share_grows_with_transposes(self):
        """Multi-dimensional NTTs spend a bigger energy share in the
        network than single-dimension ones."""
        single = run_ntt(16, 16)   # one dimension, no transposes
        multi = run_ntt(16, 4096)  # three dimensions
        r1 = estimate_program_energy(single, 16)
        r3 = estimate_program_energy(multi, 16)
        share1 = r1.network_pj / r1.total_pj
        share3 = r3.network_pj / r3.total_pj
        assert share3 > share1
