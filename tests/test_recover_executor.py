"""Durable-executor tests: bit-identical resume, and the three typed
recovery findings — torn tail, corrupt checkpoint, stale checkpoint —
each produced by a deliberately damaged journal fixture."""

import numpy as np
import pytest

from repro.analysis.ctstate import Op, ckks_mult_rotate_sequence
from repro.fhe.ckks import CkksContext
from repro.fhe.params import toy_params
from repro.recover.checkpoint import live_set, sink_indices
from repro.recover.executor import (JOURNAL_NAME, DivergenceError,
                                    DurableExecutor, golden_outputs_digest)
from repro.recover.journal import (RT_CHECKPOINT, RT_COMMIT, RT_OP_DONE,
                                   JournalError, decode, encode)
from repro.recover.wal import WriteAheadLog, scan

PARAMS = toy_params()
OPS = ckks_mult_rotate_sequence(PARAMS.levels)
RUN_SEED = 42
INTERVAL = 2


def _make_ctx():
    ctx = CkksContext(PARAMS, seed=2025)
    ctx.generate_galois_keys([1])
    return ctx


def _inputs():
    rng = np.random.default_rng(7)
    n_feed = sum(1 for op in OPS
                 if op.kind in ("encrypt", "multiply_plain"))
    return [rng.standard_normal(PARAMS.n // 2).tolist()
            for _ in range(n_feed)]


INPUTS = _inputs()
GOLDEN = golden_outputs_digest(_make_ctx(), OPS, INPUTS, run_seed=RUN_SEED)


def _executor(directory):
    return DurableExecutor(_make_ctx(), OPS, INPUTS, directory,
                           checkpoint_interval=INTERVAL, run_seed=RUN_SEED)


def _completed_run(directory):
    report = _executor(directory).run()
    assert report.committed and report.outputs_digest == GOLDEN
    return directory / JOURNAL_NAME


def _rewrite(path, keep=None, mutate=None):
    """Rebuild a WAL, optionally dropping records (``keep(record)``)
    and/or mutating payloads (``mutate(record) -> bytes | None``)."""
    records = scan(path).records
    path.unlink()
    with WriteAheadLog(path) as wal:
        for record in records:
            if keep is not None and not keep(record):
                continue
            payload = record.payload
            if mutate is not None:
                replacement = mutate(record)
                if replacement is not None:
                    payload = replacement
            wal.append(record.rtype, payload)


class TestFreshRunAndResume:
    def test_fresh_run_matches_golden(self, tmp_path):
        report = _executor(tmp_path).run()
        assert report.committed
        assert report.outputs_digest == GOLDEN
        assert report.replayed_ops == len(OPS)
        assert report.findings == []

    def test_resume_after_commit_is_a_noop(self, tmp_path):
        _completed_run(tmp_path)
        report = _executor(tmp_path).resume()
        assert report.committed and report.outputs_digest == GOLDEN
        assert report.replayed_ops == 0
        assert report.skipped_ops == len(OPS)

    def test_resume_from_checkpoint_is_bit_identical(self, tmp_path):
        journal = _completed_run(tmp_path)
        # Drop the COMMIT and the records after the last checkpoint —
        # the on-disk state of a crash mid-run.
        seen = {"checkpoint": 0}

        def keep(record):
            if record.rtype == RT_CHECKPOINT:
                seen["checkpoint"] += 1
            if record.rtype == RT_COMMIT:
                return False
            if record.rtype == RT_OP_DONE:
                return decode(record)["index"] <= 3
            return True

        _rewrite(journal, keep=keep)
        report = _executor(tmp_path).resume()
        assert report.outputs_digest == GOLDEN
        assert report.committed
        assert report.resumed_from >= 0
        assert report.skipped_ops > 0
        assert report.replayed_ops < len(OPS)
        assert report.findings == []

    def test_resume_on_empty_journal_runs_fresh(self, tmp_path):
        (tmp_path / JOURNAL_NAME).write_bytes(b"")
        report = _executor(tmp_path).resume()
        assert report.committed and report.outputs_digest == GOLDEN

    def test_resume_rejects_foreign_program(self, tmp_path):
        _completed_run(tmp_path)
        other = DurableExecutor(
            _make_ctx(), OPS + [Op("add", (len(OPS) - 1, len(OPS) - 1))],
            INPUTS, tmp_path, checkpoint_interval=INTERVAL,
            run_seed=RUN_SEED)
        with pytest.raises(JournalError):
            other.resume()


class TestTornTailFixture:
    def test_exactly_one_torn_finding(self, tmp_path):
        journal = _completed_run(tmp_path)
        _rewrite(journal, keep=lambda r: r.rtype != RT_COMMIT)
        blob = journal.read_bytes()
        journal.write_bytes(blob + blob[:11])  # the torn record
        report = _executor(tmp_path).resume()
        assert report.finding_kinds() == ["torn_tail"]
        assert report.outputs_digest == GOLDEN
        assert report.committed


class TestCorruptCheckpointFixture:
    def test_exactly_one_corrupt_finding_and_fallback(self, tmp_path):
        journal = _completed_run(tmp_path)
        boundaries = [decode(r)["boundary"] for r in scan(journal).records
                      if r.rtype == RT_CHECKPOINT]
        newest = {"boundary": max(boundaries)}

        def mutate(record):
            # Bit-flip the newest checkpoint's journaled content digest
            # so the (intact) archive no longer matches it.
            if record.rtype != RT_CHECKPOINT:
                return None
            entry = decode(record)
            if entry["boundary"] != newest["boundary"]:
                return None
            digest = entry["entries"][0]["digest"]
            flipped = ("0" if digest[0] != "0" else "1") + digest[1:]
            entry["entries"][0]["digest"] = flipped
            return encode(entry)

        _rewrite(journal, keep=lambda r: r.rtype != RT_COMMIT,
                 mutate=mutate)
        report = _executor(tmp_path).resume()
        assert report.finding_kinds() == ["corrupt_checkpoint"]
        # Fell back to the older checkpoint, still bit-identical.
        assert report.resumed_from < newest["boundary"]
        assert report.outputs_digest == GOLDEN

    def test_truncated_archive_is_corrupt_not_crash(self, tmp_path):
        journal = _completed_run(tmp_path)
        _rewrite(journal, keep=lambda r: r.rtype != RT_COMMIT)
        newest = [decode(r) for r in scan(journal).records
                  if r.rtype == RT_CHECKPOINT][-1]
        archive = tmp_path / newest["entries"][0]["file"]
        archive.write_bytes(archive.read_bytes()[:40])
        report = _executor(tmp_path).resume()
        assert report.finding_kinds() == ["corrupt_checkpoint"]
        assert report.outputs_digest == GOLDEN


class TestStaleCheckpointFixture:
    def test_exactly_one_stale_finding(self, tmp_path):
        journal = _completed_run(tmp_path)
        newest = max(decode(r)["boundary"] for r in scan(journal).records
                     if r.rtype == RT_CHECKPOINT)

        def mutate(record):
            if record.rtype != RT_CHECKPOINT:
                return None
            entry = decode(record)
            if entry["boundary"] != newest:
                return None
            entry["ops_digest"] = "0" * 64  # a different program's
            return encode(entry)

        _rewrite(journal, keep=lambda r: r.rtype != RT_COMMIT,
                 mutate=mutate)
        report = _executor(tmp_path).resume()
        assert report.finding_kinds() == ["stale_checkpoint"]
        assert report.resumed_from < newest  # rejected, fell back
        assert report.outputs_digest == GOLDEN


class TestDivergenceDetection:
    def test_tampered_op_digest_raises_loudly(self, tmp_path):
        journal = _completed_run(tmp_path)

        def mutate(record):
            if record.rtype != RT_OP_DONE:
                return None
            entry = decode(record)
            if entry["index"] != len(OPS) - 1:
                return None
            entry["digest"] = "f" * 64
            return entry and encode(entry)

        _rewrite(journal, keep=lambda r: r.rtype != RT_COMMIT,
                 mutate=mutate)
        with pytest.raises(DivergenceError):
            _executor(tmp_path).resume()


class TestLiveSet:
    def test_chain_keeps_only_frontier(self):
        ops = [Op("encrypt"), Op("encrypt"), Op("multiply", (0, 1)),
               Op("rescale", (2,)), Op("rotate", (3,), arg=1)]
        assert live_set(ops, 3) == [3]
        assert sink_indices(ops) == [4]

    def test_value_read_far_later_stays_live(self):
        ops = [Op("encrypt"), Op("encrypt"), Op("multiply", (0, 1)),
               Op("rescale", (2,)), Op("add", (3, 0))]
        assert 0 in live_set(ops, 3)  # op 4 still reads value 0

    def test_sinks_survive(self):
        ops = [Op("encrypt"), Op("encrypt"), Op("multiply", (0, 1))]
        # value 2 is a sink and must be in every later live set
        assert live_set(ops, 2) == [2]
