"""Pool degradation edge cases: explicit retirement, capacity floor,
and the serving layer's health view."""

import numpy as np
import pytest

from repro.accel.parallel import ParallelVpuPool, PoolExhaustedError
from repro.ntt import vec_ntt_dif
from repro.ntt.tables import get_tables
from repro.obs import observe
from repro.serve.admission import PoolHealth

Q = 998244353
N, M = 256, 16


def _golden(batch: np.ndarray) -> np.ndarray:
    tables = get_tables(N, Q)
    out = np.empty_like(batch)
    for i, row in enumerate(batch):
        natural = np.empty(N, dtype=np.uint64)
        natural[tables.bitrev] = vec_ntt_dif(row % np.uint64(Q), tables)
        out[i] = natural
    return out


class TestRetirement:
    def test_healthy_units_tracks_retirements(self):
        pool = ParallelVpuPool(4, m=M, q=Q)
        assert pool.healthy_units == (0, 1, 2, 3)
        pool.retire(2)
        assert pool.healthy_units == (0, 1, 3)
        assert pool.quarantined == {2}

    def test_retire_is_idempotent(self):
        pool = ParallelVpuPool(3, m=M, q=Q)
        pool.retire(1)
        pool.retire(1)
        assert pool.quarantined == {1}

    def test_out_of_range_raises_value_error(self):
        pool = ParallelVpuPool(2, m=M, q=Q)
        with pytest.raises(ValueError):
            pool.retire(-1)
        with pytest.raises(ValueError):
            pool.retire(2)

    def test_last_unit_raises_typed_error(self):
        pool = ParallelVpuPool(2, m=M, q=Q)
        pool.retire(0)
        with pytest.raises(PoolExhaustedError):
            pool.retire(1)
        # The refusal left the pool serviceable.
        assert pool.healthy_units == (1,)

    def test_single_vpu_pool_cannot_retire(self):
        pool = ParallelVpuPool(1, m=M, q=Q)
        with pytest.raises(PoolExhaustedError):
            pool.retire(0)

    def test_retirement_publishes_obs_gauges(self):
        with observe() as obs:
            pool = ParallelVpuPool(4, m=M, q=Q)
            pool.retire(3)
            assert obs.metrics.gauges["pool.healthy_vpus"] == 3
            assert obs.metrics.gauges["pool.quarantined_vpus"] == 1
            assert obs.metrics.counters["pool.retirements"] == 1


class TestDegradedExecution:
    def test_all_but_one_retired_still_correct(self):
        pool = ParallelVpuPool(4, m=M, q=Q)
        for index in range(3):
            pool.retire(index)
        rng = np.random.default_rng(5)
        batch = rng.integers(0, Q, (6, N), dtype=np.uint64)
        outputs, report = pool.run_ntt_batch(batch, N)
        assert np.array_equal(outputs, _golden(batch))
        # Only the surviving unit burned cycles; utilization reflects
        # the idle retired slots.
        active = [c for c in report.per_vpu_cycles if c]
        assert len(active) == 1
        assert report.makespan_cycles == report.total_cycles
        assert 0.0 < report.utilization <= 0.25 + 1e-9
        assert report.speedup == pytest.approx(1.0)

    def test_half_retired_pool_matches_full_pool_results(self):
        rng = np.random.default_rng(6)
        batch = rng.integers(0, Q, (8, N), dtype=np.uint64)
        full = ParallelVpuPool(4, m=M, q=Q)
        degraded = ParallelVpuPool(4, m=M, q=Q)
        degraded.retire(1)
        degraded.retire(3)
        out_full, _ = full.run_ntt_batch(batch, N)
        out_degraded, report = degraded.run_ntt_batch(batch, N)
        assert np.array_equal(out_full, out_degraded)
        assert all(report.per_vpu_cycles[i] == 0 for i in (1, 3))

    def test_health_fraction_feeds_admission(self):
        pool = ParallelVpuPool(4, m=M, q=Q)
        health = PoolHealth(pool)
        assert health() == 1.0
        pool.retire(0)
        pool.retire(1)
        assert health() == pytest.approx(0.5)
