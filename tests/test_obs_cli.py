"""``python -m repro.obs``: the workload profiler CLI."""

import json

import pytest

from repro.obs.cli import _WORKLOADS, build_parser, main, profile
from repro.obs.export import validate_chrome_trace


class TestProfile:
    @pytest.fixture(scope="class")
    def result(self):
        workload = _WORKLOADS["keyswitch"](quick=True, seed=2025)
        return profile(workload, m=16)

    def test_neutrality_checks_pass(self, result):
        assert result["checks"]["bit_identical"]
        assert result["checks"]["cycles_identical"]
        assert result["ok"]

    def test_phase_cycles_sum_to_backend_total(self, result):
        assert result["checks"]["phase_sum_matches_total"]
        assert result["checks"]["fully_attributed"]
        assert result["unattributed"] == 0
        assert result["phase_sum"] == result["cycles"]["on"]

    def test_keyswitch_phase_taxonomy(self, result):
        assert {"keyswitch.decompose", "keyswitch.ntt",
                "keyswitch.inner_product", "keyswitch.mod_down"} \
            <= set(result["phases"])

    def test_hrot_covers_automorphism_phase(self):
        workload = _WORKLOADS["hrot"](quick=True, seed=3)
        result = profile(workload, m=16)
        assert result["ok"]
        assert "hrot.automorphism" in result["phases"]


class TestMain:
    def test_end_to_end_artifacts(self, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        status = main(["--workload", "keyswitch", "--quick",
                       "--trace", str(trace), "--metrics", str(metrics)])
        assert status == 0

        with open(trace) as fh:
            trace_obj = json.load(fh)
        assert validate_chrome_trace(trace_obj) == []
        names = {e["name"] for e in trace_obj["traceEvents"]
                 if e.get("ph") == "X"}
        assert "keyswitch.ntt" in names and "vpu.execute" in names

        with open(metrics) as fh:
            snap = json.load(fh)
        assert snap["schema"] == 1 and snap["bench"] == "obs"
        assert snap["workload"] == "keyswitch"
        assert all(snap["checks"].values())
        assert snap["counters"]["vpu.executions"] > 0
        assert snap["counters"]["backend.kernels.ntt"] > 0

    def test_validate_trace_mode(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["--workload", "keyswitch", "--quick",
                     "--trace", str(trace),
                     "--metrics", str(metrics)]) == 0
        assert main(["--validate-trace", str(trace)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"notTraceEvents": []}')
        assert main(["--validate-trace", str(bad)]) == 1

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "keyswitch"
        assert args.m == 16 and not args.quick
