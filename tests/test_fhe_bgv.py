"""Tests for the BGV scheme — exact integer FHE on the same substrate
(paper §II-A: BGV/BFV share the accelerator's computation patterns)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.bgv import BgvCiphertext, BgvContext, BgvParams

T = 65537


@pytest.fixture(scope="module")
def ctx():
    return BgvContext(BgvParams(n=256, levels=3, plaintext_modulus=T,
                                prime_bits=28), seed=7)


@pytest.fixture(scope="module")
def rot_ctx():
    context = BgvContext(BgvParams(n=256, levels=3, plaintext_modulus=T,
                                   prime_bits=28), seed=8)
    context.generate_galois_keys([1, 2, 16])
    return context


def rand_slots(n, seed):
    return np.random.default_rng(seed).integers(0, T, n).astype(np.int64)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            BgvParams(plaintext_modulus=65536)  # not prime
        with pytest.raises(ValueError):
            BgvParams(n=65536, plaintext_modulus=65537)  # t != 1 mod 2n

    def test_slot_order_is_permutation(self, ctx):
        assert sorted(ctx._slot_order) == list(range(256))


class TestEncoding:
    def test_roundtrip(self, ctx):
        v = rand_slots(256, 0)
        poly = ctx.encode(v)
        coeff = poly.to_coeff()
        lifted = coeff.centered_limb(0)
        np.testing.assert_array_equal(ctx.decode(lifted), v % T)

    def test_encode_is_ring_homomorphism(self, ctx):
        """Slot-wise products equal plaintext-poly ring products."""
        v1, v2 = rand_slots(256, 1), rand_slots(256, 2)
        p1, p2 = ctx.encode(v1), ctx.encode(v2)
        prod = (p1 * p2).to_coeff()
        # Lift the product's coefficients centered and decode mod t.
        from repro.arith.modular import mod_inverse

        q_prod = 1
        for q in prod.primes:
            q_prod *= q
        total = np.zeros(256, dtype=object)
        for i, q in enumerate(prod.primes):
            q_hat = q_prod // q
            total = (total + prod.residues[i].astype(object)
                     * (q_hat * mod_inverse(q_hat, q) % q_prod)) % q_prod
        centered = np.where(total > q_prod // 2, total - q_prod, total)
        got = ctx.decode(centered)
        expected = (v1.astype(object) * v2) % T
        np.testing.assert_array_equal(got, expected.astype(np.int64))

    def test_wrong_size(self, ctx):
        with pytest.raises(ValueError):
            ctx.encode(np.zeros(100, dtype=np.int64))


class TestEncryptDecrypt:
    def test_roundtrip_exact(self, ctx):
        v = rand_slots(256, 3)
        np.testing.assert_array_equal(ctx.decrypt(ctx.encrypt(v)), v % T)

    def test_zero_and_max(self, ctx):
        for v in [np.zeros(256, dtype=np.int64),
                  np.full(256, T - 1, dtype=np.int64)]:
            np.testing.assert_array_equal(ctx.decrypt(ctx.encrypt(v)), v % T)


class TestHomomorphicOps:
    def test_add_exact(self, ctx):
        v1, v2 = rand_slots(256, 4), rand_slots(256, 5)
        out = ctx.decrypt(ctx.add(ctx.encrypt(v1), ctx.encrypt(v2)))
        np.testing.assert_array_equal(out, (v1 + v2) % T)

    def test_sub_exact(self, ctx):
        v1, v2 = rand_slots(256, 6), rand_slots(256, 7)
        out = ctx.decrypt(ctx.sub(ctx.encrypt(v1), ctx.encrypt(v2)))
        np.testing.assert_array_equal(out, (v1 - v2) % T)

    def test_add_plain(self, ctx):
        v1, v2 = rand_slots(256, 8), rand_slots(256, 9)
        out = ctx.decrypt(ctx.add_plain(ctx.encrypt(v1), v2))
        np.testing.assert_array_equal(out, (v1 + v2) % T)

    def test_multiply_plain(self, ctx):
        v1, v2 = rand_slots(256, 10), rand_slots(256, 11)
        out = ctx.decrypt(ctx.multiply_plain(ctx.encrypt(v1), v2))
        expected = (v1.astype(object) * v2) % T
        np.testing.assert_array_equal(out, expected.astype(np.int64))

    def test_multiply_exact(self, ctx):
        v1, v2 = rand_slots(256, 12), rand_slots(256, 13)
        ct = ctx.multiply(ctx.encrypt(v1), ctx.encrypt(v2))
        assert ct.level == 1  # modulus-switched
        expected = (v1.astype(object) * v2) % T
        np.testing.assert_array_equal(ctx.decrypt(ct),
                                      expected.astype(np.int64))

    def test_depth_two_exact(self, ctx):
        v1, v2 = rand_slots(256, 14), rand_slots(256, 15)
        c1 = ctx.multiply(ctx.encrypt(v1), ctx.encrypt(v2))
        c2 = ctx.multiply(ctx.encrypt(v1), ctx.encrypt(v2))
        out = ctx.decrypt(ctx.multiply(c1, c2))
        expected = ((v1.astype(object) * v2) ** 2) % T
        np.testing.assert_array_equal(out, expected.astype(np.int64))

    def test_factor_tracking(self, ctx):
        v = rand_slots(256, 16)
        ct = ctx.multiply(ctx.encrypt(v), ctx.encrypt(v))
        dropped = ctx._cp.primes[-1]
        assert ct.factor == dropped % T

    def test_factor_mismatch_rejected(self, ctx):
        v = rand_slots(256, 17)
        fresh = ctx.encrypt(v)
        switched = ctx.mod_switch(fresh)
        with pytest.raises(ValueError):
            ctx.add(fresh, switched)

    def test_mod_switch_preserves_plaintext(self, ctx):
        v = rand_slots(256, 18)
        ct = ctx.mod_switch(ctx.encrypt(v))
        assert ct.level == ctx.params.levels - 2
        np.testing.assert_array_equal(ctx.decrypt(ct), v % T)

    def test_mod_switch_at_bottom_rejected(self, ctx):
        v = rand_slots(256, 19)
        ct = ctx.mod_switch(ctx.mod_switch(ctx.encrypt(v)))
        with pytest.raises(ValueError):
            ctx.mod_switch(ct)


class TestRotation:
    @pytest.mark.parametrize("steps", [1, 2, 16])
    def test_rotation_rotates_both_orbits(self, rot_ctx, steps):
        v = rand_slots(256, 20 + steps)
        out = rot_ctx.decrypt(rot_ctx.rotate(rot_ctx.encrypt(v), steps))
        half = 128
        np.testing.assert_array_equal(out[:half], np.roll(v[:half] % T, -steps))
        np.testing.assert_array_equal(out[half:], np.roll(v[half:] % T, -steps))

    def test_rotation_zero(self, rot_ctx):
        v = rand_slots(256, 30)
        out = rot_ctx.decrypt(rot_ctx.rotate(rot_ctx.encrypt(v), 0))
        np.testing.assert_array_equal(out, v % T)

    def test_missing_key(self, rot_ctx):
        with pytest.raises(KeyError):
            rot_ctx.rotate(rot_ctx.encrypt(rand_slots(256, 31)), 7)


class TestVsCkks:
    def test_same_keyswitch_machinery(self, ctx):
        """BGV's relin key comes from the identical generator CKKS uses —
        the unified-substrate point of §II-A."""
        from repro.fhe.keyswitch import KeySwitchKey

        assert isinstance(ctx.relin_key, KeySwitchKey)
        assert ctx.relin_key.num_digits == ctx.params.levels

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_affine_circuit_property(self, seed):
        context = BgvContext(BgvParams(n=256, levels=2, plaintext_modulus=T,
                                       prime_bits=28), seed=3)
        rng = np.random.default_rng(seed)
        v = rng.integers(0, T, 256).astype(np.int64)
        w = rng.integers(0, T, 256).astype(np.int64)
        out = context.decrypt(
            context.add_plain(context.multiply_plain(context.encrypt(v), w), w))
        expected = ((v.astype(object) * w) + w) % T
        np.testing.assert_array_equal(out, expected.astype(np.int64))
