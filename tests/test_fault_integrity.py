"""The ABFT integrity layer: detection, bounded replay, degradation."""

import numpy as np
import pytest

from repro.accel.dram import DramModel
from repro.accel.parallel import ParallelVpuPool
from repro.arith.primes import find_ntt_prime, find_ntt_primes
from repro.fault.injector import FaultInjector, FaultSpec, use_fault_hook
from repro.fault.integrity import SPARE_MODULUS, AbftChecker
from repro.fault.policy import IntegrityPolicy
from repro.fhe.backend import (
    IntegrityBackend,
    NumpyBackend,
    VpuBackend,
    clear_caches,
    use_backend,
)
from repro.ntt.negacyclic import NegacyclicNtt

N = 64
M = 16
PRIMES = tuple(find_ntt_primes(2 * N, 28, 3))


def _rows(seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.stack([rng.integers(0, q, size=N, dtype=np.uint64)
                     for q in PRIMES])


def _golden_batch(rows: np.ndarray) -> np.ndarray:
    return np.stack([NegacyclicNtt(N, q).forward(rows[i])
                     for i, q in enumerate(PRIMES)])


class TestAbftChecker:
    def test_clean_ntt_batch_passes(self):
        rows = _rows()
        assert AbftChecker().check_ntt_batch(rows, _golden_batch(rows),
                                             PRIMES)

    def test_single_bitflip_in_any_row_is_detected(self):
        rows = _rows()
        outputs = _golden_batch(rows)
        for row in range(len(PRIMES)):
            corrupted = outputs.copy()
            corrupted[row, 17] ^= np.uint64(1 << 9)
            assert not AbftChecker().check_ntt_batch(rows, corrupted, PRIMES)

    def test_inverse_batch_checked(self):
        rows = _rows()
        values = _golden_batch(rows)
        checker = AbftChecker()
        assert checker.check_ntt_batch(values, rows, PRIMES, inverse=True)
        bad = rows.copy()
        bad[0, 0] ^= np.uint64(1)
        assert not checker.check_ntt_batch(values, bad, PRIMES, inverse=True)
        assert checker.checks == 2 and checker.mismatches == 1

    def test_automorphism_batch(self):
        rows = _rows()
        backend = NumpyBackend()
        out = backend.automorphism_eval_batch(rows, 5, PRIMES)
        checker = AbftChecker()
        assert checker.check_automorphism_batch(rows, out, 5)
        bad = out.copy()
        bad[1, 3] += np.uint64(1)
        assert not checker.check_automorphism_batch(rows, bad, 5)

    def test_keyswitch_spare_modulus(self):
        rng = np.random.default_rng(11)
        q = PRIMES[0]
        digit = rng.integers(0, q, size=(4, 3, N), dtype=np.uint64)
        key = rng.integers(0, q, size=(4, 3, N), dtype=np.uint64)
        acc = (digit * key).sum(axis=0)  # exact: 4 * (2**28)**2 < 2**64
        checker = AbftChecker()
        assert checker.check_keyswitch_accumulation(acc, digit, key)
        acc[1, 5] ^= np.uint64(1 << 40)
        assert not checker.check_keyswitch_accumulation(acc, digit, key)
        assert (1 << 40) % SPARE_MODULUS != 0  # why the flip cannot hide


class TestPolicyParsing:
    def test_aliases(self):
        assert IntegrityPolicy.parse("off") is IntegrityPolicy.OFF
        assert IntegrityPolicy.parse("retry") is IntegrityPolicy.DETECT_RETRY
        assert IntegrityPolicy.parse("detect+retry") is \
            IntegrityPolicy.DETECT_RETRY
        assert IntegrityPolicy.parse("degrade") is \
            IntegrityPolicy.DETECT_DEGRADE
        assert IntegrityPolicy.parse(IntegrityPolicy.DETECT) is \
            IntegrityPolicy.DETECT

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            IntegrityPolicy.parse("yolo")


class TestIntegrityBackendOff:
    def test_off_is_bit_exact_with_zero_checks(self):
        rows = _rows()
        backend = IntegrityBackend(NumpyBackend(), "off")
        out = backend.forward_ntt_batch(rows, PRIMES)
        assert np.array_equal(out, NumpyBackend().forward_ntt_batch(
            rows, PRIMES))
        assert backend.checker.checks == 0
        assert backend.detections == 0

    def test_off_adds_zero_modeled_cycles(self):
        x = _rows()[0]
        plain = VpuBackend(M)
        base = plain.forward_ntt(x, PRIMES[0])
        inner = VpuBackend(M)
        wrapped = IntegrityBackend(inner, "off")
        out = wrapped.forward_ntt(x, PRIMES[0])
        assert np.array_equal(base, out)
        assert inner.vpu.stats.cycles == plain.vpu.stats.cycles


class TestDetectAndRetry:
    def test_detect_flags_but_keeps_result(self):
        spec = FaultSpec("alu", "stuck1", cycle=0, bit=33, lane=2)
        inner = VpuBackend(M)
        inner.vpu.install_fault_hook(FaultInjector([spec]))
        backend = IntegrityBackend(inner, "detect")
        out = backend.forward_ntt_batch(_rows(), PRIMES)
        assert backend.detections >= 1 and backend.flagged >= 1
        assert backend.retries == 0
        assert not np.array_equal(out, _golden_batch(_rows()))

    def test_retry_corrects_single_bitflip(self):
        spec = FaultSpec("alu", "transient", cycle=3, bit=9, lane=1)
        inner = VpuBackend(M)
        injector = FaultInjector([spec])
        inner.vpu.install_fault_hook(injector)
        backend = IntegrityBackend(inner, "retry")
        with use_fault_hook(injector):
            out = backend.forward_ntt_batch(_rows(), PRIMES)
        assert np.array_equal(out, _golden_batch(_rows()))
        assert backend.detections >= 1
        assert backend.retries >= 1
        assert backend.corrected >= 1
        # The injector was credited with the detection and its latency.
        assert injector.detection_latencies

    def test_retry_exhaustion_surfaces_flagged_result(self):
        spec = FaultSpec("alu", "stuck1", cycle=0, bit=33, lane=2)
        inner = VpuBackend(M)
        inner.vpu.install_fault_hook(FaultInjector([spec]))
        backend = IntegrityBackend(inner, "retry", max_retries=2)
        out = backend.forward_ntt_batch(_rows(), PRIMES)
        assert backend.retries == 2 and backend.flagged == 1
        assert not np.array_equal(out, _golden_batch(_rows()))


class TestDegradation:
    def test_stuck_dram_degrades_to_clean_path(self):
        # bit 62 is clear in every residue, so the stuck-at always fires
        # and persists across replays — only leaving the faulty link
        # (degrade) can win.
        spec = FaultSpec("dram", "stuck1", cycle=0, bit=62, lane=5)
        injector = FaultInjector([spec])
        backend = IntegrityBackend(VpuBackend(M), "degrade",
                                   max_retries=1, dram=DramModel())
        with use_fault_hook(injector):
            out = backend.forward_ntt_batch(_rows(), PRIMES)
        assert np.array_equal(out, _golden_batch(_rows()))
        assert backend.degrade_level >= 1
        assert backend.degradations >= 1

    def test_quarantine_then_ladder(self):
        spec = FaultSpec("alu", "stuck1", cycle=0, bit=33, lane=2)
        inner = VpuBackend(M)
        inner.vpu.install_fault_hook(FaultInjector([spec]))
        backend = IntegrityBackend(inner, "degrade", max_retries=1,
                                   quarantine_threshold=1)
        out = backend.forward_ntt_batch(_rows(), PRIMES)
        assert np.array_equal(out, _golden_batch(_rows()))
        assert inner.quarantined_programs  # the program was blacklisted
        assert backend.degrade_level >= 1
        inner.clear_caches()
        assert inner.quarantined_programs == ()

    def test_module_clear_caches_clears_active_backend(self):
        inner = VpuBackend(M)
        backend = IntegrityBackend(inner, "retry")
        inner.quarantine_program("ntt", N, PRIMES[0])
        with use_backend(backend):
            clear_caches()
        assert inner.quarantined_programs == ()


class TestKeyswitchIntegrity:
    def test_spare_channel_recovers_corrupted_accumulator(self):
        from repro.fhe.keyswitch import apply_keyswitch, generate_keyswitch_key
        from repro.fhe.params import toy_params
        from repro.fhe.sampling import sample_uniform_poly

        params = toy_params()
        rng = np.random.default_rng(33)
        full = params.primes + (params.special_prime,)
        s_from = sample_uniform_poly(params.n, full, rng)
        s_to = sample_uniform_poly(params.n, full, rng)
        ksk = generate_keyswitch_key(params, s_from, s_to, rng)
        x = sample_uniform_poly(params.n, params.primes, rng)
        with use_backend(NumpyBackend()):
            g0, g1 = apply_keyswitch(x, ksk, params)
        spec = FaultSpec("keyswitch", "bitflip", cycle=0, bit=40, lane=7)
        backend = IntegrityBackend(NumpyBackend(), "retry")
        with use_backend(backend), use_fault_hook(FaultInjector([spec])):
            p0, p1 = apply_keyswitch(x, ksk, params)
        assert np.array_equal(p0.residues, g0.residues)
        assert np.array_equal(p1.residues, g1.residues)
        assert backend.keyswitch_detections >= 1
        assert backend.keyswitch_recomputed >= 1

    def test_integrity_counters_shape(self):
        backend = IntegrityBackend(NumpyBackend(), "retry")
        counters = backend.integrity_counters()
        assert counters["checks"] == 0
        assert set(counters) >= {"detections", "corrected", "retries",
                                 "flagged", "degrade_level",
                                 "keyswitch_detections"}


class TestParallelPoolIntegrity:
    def test_faulty_vpu_is_quarantined_and_work_replays(self):
        q = find_ntt_prime(2 * N, 28)
        rng = np.random.default_rng(5)
        limbs = rng.integers(0, q, size=(4, N), dtype=np.uint64)
        clean_pool = ParallelVpuPool(2, M, q)
        golden, _ = clean_pool.run_ntt_batch(limbs, N)
        pool = ParallelVpuPool(2, M, q, policy="retry")
        pool.vpus[0].install_fault_hook(FaultInjector(
            [FaultSpec("alu", "stuck1", cycle=0, bit=33, lane=0)]))
        out, report = pool.run_ntt_batch(limbs, N)
        assert np.array_equal(out, golden)
        assert report.detections >= 1
        assert report.retries >= 1
        assert 0 in report.quarantined_vpus

    def test_degrade_falls_back_to_golden_row(self):
        q = find_ntt_prime(2 * N, 28)
        rng = np.random.default_rng(6)
        limbs = rng.integers(0, q, size=(3, N), dtype=np.uint64)
        golden, _ = ParallelVpuPool(1, M, q).run_ntt_batch(limbs, N)
        pool = ParallelVpuPool(1, M, q, policy="degrade", max_retries=1)
        for vpu in pool.vpus:  # every unit faulty: replay cannot win
            vpu.install_fault_hook(FaultInjector(
                [FaultSpec("alu", "stuck1", cycle=0, bit=33, lane=0)]))
        out, report = pool.run_ntt_batch(limbs, N)
        assert np.array_equal(out, golden)
        assert report.degraded >= 1

    def test_off_policy_pool_unchanged(self):
        q = find_ntt_prime(2 * N, 28)
        rng = np.random.default_rng(8)
        limbs = rng.integers(0, q, size=(4, N), dtype=np.uint64)
        pool = ParallelVpuPool(2, M, q)
        out, report = pool.run_ntt_batch(limbs, N)
        assert report.detections == 0 and report.quarantined_vpus == ()
        assert report.speedup >= 1.0
        assert out.shape == limbs.shape
