"""Engine behavior tests: the request path end to end, failure modes
forced one at a time through handcrafted chaos plans."""

import asyncio

import numpy as np
import pytest

from repro.serve.chaos import ChaosInjector, ChaosPlan
from repro.serve.deadline import Deadline
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.errors import EngineClosedError
from repro.serve.executor import CkksOpExecutor, SimulatedExecutor
from repro.serve.requests import (
    OPS,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ServeRequest,
)


def _request(request_id: int, op: str = "hmult", timeout: float = 2.0,
             tenant: str = "t0") -> ServeRequest:
    return ServeRequest(request_id, tenant, op, Deadline.after(timeout))


def _planned(plans: dict[int, ChaosPlan]) -> ChaosInjector:
    """An injector with explicit per-request plans (no randomness)."""
    injector = ChaosInjector(specs=(), seed=0)
    injector._plans.update(plans)
    return injector


def run(coro):
    return asyncio.run(coro)


class SleepExecutor:
    """Fixed-service executor with identity fingerprints."""

    def __init__(self, service: float = 0.001):
        self.service = service

    async def run(self, request, level, straggle=1.0):
        await asyncio.sleep(self.service * straggle)
        return (request.request_id, level >= 0)

    def verify(self, request, value):
        return value == (request.request_id, True)

    def corrupt(self, value):
        return (value[0], False)

    def health(self):
        return 1.0


class TestBasicServing:
    def test_ok_result_with_phases(self):
        async def main():
            async with ServeEngine(SleepExecutor()) as engine:
                result = await engine.submit(_request(1))
            return result

        result = run(main())
        assert result.status == STATUS_OK
        assert result.level == 0 and result.attempts == 1
        assert result.latency > 0
        assert set(result.phases) == {"queue", "dispatch", "compute",
                                      "verify"}
        assert result.phases["compute"] > 0

    def test_all_ops_accepted(self):
        async def main():
            async with ServeEngine(SimulatedExecutor(seed=2)) as engine:
                return [await engine.submit(_request(i, op))
                        for i, op in enumerate(OPS)]

        assert [r.status for r in run(main())] == [STATUS_OK] * len(OPS)

    def test_unknown_op_rejected_at_construction(self):
        with pytest.raises(ValueError):
            _request(1, op="bootstrap")

    def test_expired_deadline_resolves_timeout(self):
        async def main():
            async with ServeEngine(SleepExecutor()) as engine:
                return await engine.submit(_request(1, timeout=0.0))

        result = run(main())
        assert result.status == STATUS_TIMEOUT
        assert result.error  # typed

    def test_closed_engine_rejects_typed(self):
        async def main():
            engine = ServeEngine(SleepExecutor())
            async with engine:
                pass
            return await engine.submit(_request(1))

        result = run(main())
        assert result.status == STATUS_ERROR
        assert result.error == EngineClosedError.__name__


class TestAdmissionPaths:
    def test_rate_limited_with_retry_after(self):
        config = ServeConfig(tenant_rate=1.0, tenant_burst=1.0)

        async def main():
            async with ServeEngine(SleepExecutor(), config) as engine:
                first = await engine.submit(_request(1))
                second = await engine.submit(_request(2))
            return first, second

        first, second = run(main())
        assert first.status == STATUS_OK
        assert second.status == STATUS_REJECTED
        assert second.error == "rate_limited"
        assert second.retry_after is not None and second.retry_after > 0

    def test_overload_sheds_with_retry_after(self):
        config = ServeConfig(workers=1, queue_limit=1, tenant_rate=1e6,
                             tenant_burst=1e6)

        async def main():
            async with ServeEngine(SleepExecutor(0.05), config) as engine:
                results = await asyncio.gather(
                    *(engine.submit(_request(i)) for i in range(6)))
            return results

        results = run(main())
        statuses = {r.status for r in results}
        shed = [r for r in results if r.status == STATUS_REJECTED]
        assert shed and all(r.error == "overloaded" for r in shed)
        assert all(r.retry_after > 0 for r in shed)
        assert STATUS_OK in statuses


class TestFailureRecovery:
    def test_transient_corruption_retried_to_ok(self):
        chaos = _planned({1: ChaosPlan(corrupt_attempts=1,
                                       sites=("serve_integrity",))})

        async def main():
            async with ServeEngine(SleepExecutor(), chaos=chaos) as engine:
                return await engine.submit(_request(1))

        result = run(main())
        assert result.status == STATUS_OK
        assert result.attempts == 2 and result.retries == 1

    def test_persistent_corruption_degrades(self):
        chaos = _planned({1: ChaosPlan(corrupt_attempts=99,
                                       sites=("serve_integrity",))})

        async def main():
            async with ServeEngine(SleepExecutor(), chaos=chaos) as engine:
                return await engine.submit(_request(1))

        result = run(main())
        assert result.status == STATUS_DEGRADED
        assert result.level >= 1
        assert result.value == (1, True)  # degraded value is correct

    def test_dropped_completion_retried(self):
        chaos = _planned({1: ChaosPlan(drop_attempts=1,
                                       sites=("serve_drop",))})
        config = ServeConfig(attempt_timeout=0.03)

        async def main():
            async with ServeEngine(SleepExecutor(), config,
                                   chaos=chaos) as engine:
                return await engine.submit(_request(1))

        result = run(main())
        assert result.status == STATUS_OK
        assert result.attempts == 2

    def test_straggler_still_completes(self):
        chaos = _planned({1: ChaosPlan(straggle=5.0,
                                       sites=("serve_straggler",))})

        async def main():
            async with ServeEngine(SleepExecutor(0.005),
                                   chaos=chaos) as engine:
                return await engine.submit(_request(1))

        assert run(main()).status == STATUS_OK

    def test_breaker_opens_then_recovers(self):
        plans = {i: ChaosPlan(corrupt_attempts=99,
                              sites=("serve_integrity",))
                 for i in range(1, 4)}
        chaos = _planned(plans)
        config = ServeConfig(breaker_threshold=2, breaker_reset=0.05,
                             max_attempts=2, retry_initial=0.0)

        async def main():
            async with ServeEngine(SleepExecutor(), config,
                                   chaos=chaos) as engine:
                poisoned = [await engine.submit(_request(i))
                            for i in range(1, 4)]
                # Breaker open: a clean request routes straight to the
                # degraded ladder without burning level-0 attempts.
                while_open = await engine.submit(_request(10))
                open_count = engine.breakers[0].opened_total
                await asyncio.sleep(0.06)  # past the reset timeout
                recovered = await engine.submit(_request(11))
                return poisoned, while_open, open_count, recovered

        poisoned, while_open, open_count, recovered = run(main())
        assert all(r.status == STATUS_DEGRADED for r in poisoned)
        assert open_count >= 1
        assert while_open.status == STATUS_DEGRADED
        assert while_open.attempts == 1  # no level-0 attempt while open
        assert recovered.status == STATUS_OK  # the probe healed it

    def test_watchdog_resolves_starved_request(self):
        config = ServeConfig(workers=1, attempt_timeout=1.0,
                             watchdog_grace=0.05)

        async def main():
            async with ServeEngine(SleepExecutor(0.4), config) as engine:
                slow = asyncio.ensure_future(
                    engine.submit(_request(1, timeout=1.0)))
                await asyncio.sleep(0.01)  # let it occupy the worker
                starved = await engine.submit(_request(2, timeout=0.05))
                stats = dict(engine.stats())
                slow_result = await slow
            return starved, stats, slow_result

        starved, stats, slow_result = run(main())
        assert slow_result.status == STATUS_OK
        assert starved.status == STATUS_TIMEOUT
        assert starved.error == "WatchdogTimeout"
        assert stats["watchdog_fires"] == 1

    def test_every_request_resolves_under_load(self):
        """No-hang invariant without chaos: heavy overload, tiny
        deadlines, every submission resolves with a typed status."""
        config = ServeConfig(workers=2, queue_limit=8, tenant_rate=1e6,
                            tenant_burst=1e6)

        async def main():
            async with ServeEngine(SleepExecutor(0.005), config) as engine:
                return await asyncio.gather(
                    *(engine.submit(_request(i, timeout=0.05))
                      for i in range(60)))

        results = run(main())
        assert len(results) == 60
        assert all(r.status in {STATUS_OK, STATUS_REJECTED, STATUS_TIMEOUT}
                   for r in results)


class TestCkksExecutor:
    @pytest.fixture(scope="class")
    def executor(self):
        return CkksOpExecutor(seed=11)

    def test_all_ops_verify_on_every_ladder_level(self, executor):
        async def main():
            out = {}
            for op in OPS:
                for level in (0, 1, 2):
                    request = _request(hash(op) % 1000, op)
                    value = await executor.run(request, level)
                    out[(op, level)] = executor.verify(request, value)
            return out

        verdicts = run(main())
        assert all(verdicts.values())

    def test_corruption_never_verifies(self, executor):
        async def main():
            request = _request(1, "keyswitch")
            value = await executor.run(request, 0)
            return executor.verify(request, executor.corrupt(value))

        assert run(main()) is False

    def test_served_through_engine(self, executor):
        async def main():
            async with ServeEngine(executor) as engine:
                return [await engine.submit(_request(i, op, timeout=5.0))
                        for i, op in enumerate(OPS)]

        results = run(main())
        assert [r.status for r in results] == [STATUS_OK] * len(OPS)
        for result, op in zip(results, OPS):
            assert np.allclose(result.value, executor.golden[op],
                               atol=1e-6)


class TestCloseResolution:
    """close() must resolve every outstanding ticket with a typed
    result — queued-unstarted work, and tickets that raced admission —
    never leaving a submit() hanging on the watchdog."""

    def test_fast_close_resolves_queued_work_typed(self):
        async def main():
            config = ServeConfig(workers=1, watchdog_grace=30.0)
            engine = ServeEngine(SleepExecutor(service=0.05),
                                 config=config)
            await engine.start()
            tasks = [asyncio.create_task(
                engine.submit(_request(i, timeout=60.0)))
                for i in range(6)]
            await asyncio.sleep(0.01)  # worker picks up the first
            await engine.close(drain=False)
            return await asyncio.gather(*tasks)

        results = run(main())
        statuses = [r.status for r in results]
        # The in-flight request finishes; the queued rest resolve as
        # typed shutdown errors without waiting out their deadlines.
        assert STATUS_OK in statuses
        shutdown = [r for r in results if r.status == STATUS_ERROR]
        assert shutdown and all(
            r.error == EngineClosedError.__name__ for r in shutdown)

    def test_drain_close_finishes_queued_work(self):
        async def main():
            config = ServeConfig(workers=1)
            engine = ServeEngine(SleepExecutor(service=0.002),
                                 config=config)
            await engine.start()
            tasks = [asyncio.create_task(
                engine.submit(_request(i, timeout=10.0)))
                for i in range(4)]
            await asyncio.sleep(0.001)
            await engine.close()
            return await asyncio.gather(*tasks)

        results = run(main())
        assert all(r.status == STATUS_OK for r in results)

    def test_ticket_enqueued_behind_sentinels_still_resolves(self):
        # The race close() defends against: a submit that passed
        # admission before _closed was set enqueues its ticket behind
        # the worker stop sentinels (here: no worker ever consumes it).
        async def main():
            engine = ServeEngine(SleepExecutor(),
                                 config=ServeConfig(watchdog_grace=30.0))
            # No start(): the queue has no consumers, like a ticket
            # stranded behind every worker's stop sentinel.
            task = asyncio.create_task(
                engine.submit(_request(1, timeout=60.0)))
            await asyncio.sleep(0.01)
            await engine.close(drain=False)
            return await asyncio.wait_for(task, timeout=1.0)

        result = run(main())
        assert result.status == STATUS_ERROR
        assert result.error == EngineClosedError.__name__

    def test_shutdown_resolution_counted(self):
        async def main():
            engine = ServeEngine(SleepExecutor(),
                                 config=ServeConfig(watchdog_grace=30.0))
            task = asyncio.create_task(
                engine.submit(_request(1, timeout=60.0)))
            await asyncio.sleep(0.01)
            await engine.close(drain=False)
            await task
            return engine.stats()

        stats = run(main())
        assert stats["shutdown_resolved"] == 1


class TestRequestJournal:
    """The durable request ledger: admitted-but-unresolved requests are
    re-enqueued by a restarted engine."""

    def test_resolved_requests_leave_no_pending(self, tmp_path):
        from repro.recover.journal import RequestJournal

        async def main():
            journal = RequestJournal(tmp_path / "req.wal")
            async with ServeEngine(SleepExecutor(),
                                   journal=journal) as engine:
                await engine.submit(_request(1))
                await engine.submit(_request(2))
            journal.close()
            return RequestJournal(tmp_path / "req.wal").pending()

        assert run(main()) == []

    def test_restart_reenqueues_unresolved(self, tmp_path):
        from repro.recover.journal import RequestJournal

        # A crashed engine's journal: request 7 admitted, never
        # resolved (written directly — the crash left no resolve).
        crashed = RequestJournal(tmp_path / "req.wal")
        crashed.record_submit(7, tenant="t0", op="hmult", timeout_s=5.0,
                              payload=3)
        crashed.record_resolve(6, "ok")  # unrelated, already done
        crashed.close()

        async def main():
            journal = RequestJournal(tmp_path / "req.wal")
            async with ServeEngine(SleepExecutor(),
                                   journal=journal) as engine:
                replayed = await engine.resume_pending()
                stats = engine.stats()
            journal.close()
            remaining = RequestJournal(tmp_path / "req.wal").pending()
            return replayed, stats, remaining

        replayed, stats, remaining = run(main())
        assert len(replayed) == 1
        assert replayed[0].request_id == 7
        assert replayed[0].status == STATUS_OK
        assert stats["journal_replayed"] == 1
        assert remaining == []  # the replay was journaled as resolved

    def test_rejected_requests_never_journaled(self, tmp_path):
        from repro.recover.journal import RequestJournal

        async def main():
            journal = RequestJournal(tmp_path / "req.wal")
            engine = ServeEngine(SleepExecutor(), journal=journal)
            async with engine:
                pass
            result = await engine.submit(_request(1))  # closed: rejected
            journal.close()
            return result, RequestJournal(tmp_path / "req.wal").pending()

        result, pending = run(main())
        assert result.status == STATUS_ERROR
        assert pending == []
