"""The limb-batched backend contract.

Three guarantees pin the batched kernel engine:

* batched and per-limb kernels agree limb-for-limb on both backends;
* the whole FHE pipeline is bit-identical between ``NumpyBackend`` and
  ``VpuBackend`` when every kernel goes through the batched API;
* the VPU program cache compiles each ``(kernel, n, m, q)`` once and
  replays it for every subsequent limb.
"""

import numpy as np
import pytest

from repro.arith.primes import find_ntt_primes
from repro.fhe.backend import NumpyBackend, VpuBackend, use_backend
from repro.fhe.ckks import CkksContext
from repro.fhe.params import CkksParams
from repro.fhe.polynomial import RnsPoly

N = 256
PRIMES = tuple(find_ntt_primes(2 * N, 28, 4))


def residue_stack(seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.stack([rng.integers(0, q, N, dtype=np.uint64) for q in PRIMES])


@pytest.fixture(scope="module")
def vpu_backend():
    return VpuBackend(m=16)


class TestBatchedMatchesPerLimb:
    """One dispatch over the (L, n) matrix === L per-row dispatches."""

    @pytest.mark.parametrize("backend_name", ["numpy", "vpu"])
    def test_forward_ntt_batch(self, backend_name, vpu_backend):
        backend = vpu_backend if backend_name == "vpu" else NumpyBackend()
        x = residue_stack(1)
        batched = backend.forward_ntt_batch(x, PRIMES)
        for i, q in enumerate(PRIMES):
            np.testing.assert_array_equal(
                batched[i], NumpyBackend().forward_ntt(x[i], q))

    @pytest.mark.parametrize("backend_name", ["numpy", "vpu"])
    def test_inverse_ntt_batch(self, backend_name, vpu_backend):
        backend = vpu_backend if backend_name == "vpu" else NumpyBackend()
        x = residue_stack(2)
        batched = backend.inverse_ntt_batch(x, PRIMES)
        for i, q in enumerate(PRIMES):
            np.testing.assert_array_equal(
                batched[i], NumpyBackend().inverse_ntt(x[i], q))

    @pytest.mark.parametrize("backend_name", ["numpy", "vpu"])
    @pytest.mark.parametrize("galois_k", [5, 125, 2 * N - 1])
    def test_automorphism_eval_batch(self, backend_name, galois_k,
                                     vpu_backend):
        backend = vpu_backend if backend_name == "vpu" else NumpyBackend()
        x = residue_stack(3)
        batched = backend.automorphism_eval_batch(x, galois_k, PRIMES)
        for i, q in enumerate(PRIMES):
            np.testing.assert_array_equal(
                batched[i], NumpyBackend().automorphism_eval(x[i], galois_k, q))

    def test_batch_roundtrip(self):
        backend = NumpyBackend()
        x = residue_stack(4)
        np.testing.assert_array_equal(
            backend.inverse_ntt_batch(backend.forward_ntt_batch(x, PRIMES),
                                      PRIMES), x)


class TestRnsPolyVectorizedOps:
    """Broadcast limb ops === the retired per-limb Python loops."""

    def test_ring_ops_limbwise(self):
        a = RnsPoly(residue_stack(5), PRIMES, is_eval=True)
        b = RnsPoly(residue_stack(6), PRIMES, is_eval=True)
        for got, combine in [
            (a + b, lambda x, y, q: (x + y) % q),
            (a - b, lambda x, y, q: (x + (q - y)) % q),
            (-a, lambda x, y, q: (q - x) % q),
            (a * b, lambda x, y, q: x * y % q),
            (a.mul_scalar(12345), lambda x, y, q: x * np.uint64(12345 % int(q)) % q),
        ]:
            for i, q in enumerate(PRIMES):
                qq = np.uint64(q)
                np.testing.assert_array_equal(
                    got.residues[i], combine(a.residues[i], b.residues[i], qq))

    def test_from_int_coeffs_native_dtype_fast_path(self):
        rng = np.random.default_rng(7)
        coeffs = rng.integers(-2**28, 2**28, N)
        fast = RnsPoly.from_int_coeffs(coeffs, PRIMES, to_eval=False)
        slow = RnsPoly.from_int_coeffs(coeffs.astype(object), PRIMES,
                                       to_eval=False)
        np.testing.assert_array_equal(fast.residues, slow.residues)

    def test_from_int_coeffs_bigint_fallback(self):
        huge = np.array([3**100, -(5**80), 0, 1] * (N // 4), dtype=object)
        poly = RnsPoly.from_int_coeffs(huge, PRIMES, to_eval=False)
        for i, q in enumerate(PRIMES):
            np.testing.assert_array_equal(
                poly.residues[i], np.array([int(v) % q for v in huge],
                                           dtype=np.uint64))


class TestVpuProgramCache:
    """Compiled programs are keyed on (kernel, n, m, q) and replayed."""

    def test_repeated_ntt_workload_compiles_once_per_prime(self):
        backend = VpuBackend(m=16)
        x = residue_stack(8)
        repeats = 6
        for _ in range(repeats):
            backend.forward_ntt_batch(x, PRIMES)
        assert backend.kernel_invocations == repeats * len(PRIMES)
        # One compile per distinct prime, replayed for every other limb
        # dispatch: >= 5x fewer compiles than invocations.
        assert backend.program_compilations == len(PRIMES)
        assert backend.kernel_invocations >= 5 * backend.program_compilations

    def test_automorphism_program_shared_across_limbs(self):
        backend = VpuBackend(m=16)
        x = residue_stack(9)
        backend.automorphism_eval_batch(x, 5, PRIMES)
        backend.automorphism_eval_batch(x, 5, PRIMES)
        # The permutation is modulus-independent: one program total.
        assert backend.program_compilations == 1
        assert backend.kernel_invocations == 2 * len(PRIMES)


class TestFullWorkloadBitEquality:
    """encrypt -> HMult -> relinearize -> rescale -> HRot -> decrypt,
    bit-identical between the numpy and VPU backends through the
    batched API."""

    def test_toy_pipeline(self):
        params = CkksParams(n=256, levels=2, scale_bits=26, prime_bits=28)
        rng = np.random.default_rng(0)
        z1 = rng.uniform(-1, 1, params.slots)
        z2 = rng.uniform(-1, 1, params.slots)

        def pipeline():
            ctx = CkksContext(params, seed=17)
            ctx.generate_galois_keys([2])
            ct = ctx.multiply(ctx.encrypt(z1), ctx.encrypt(z2))  # relin+rescale
            ct = ctx.rotate(ct, 2)
            return ct, ctx.decrypt(ct)

        ct_ref, dec_ref = pipeline()
        backend = VpuBackend(m=16)
        with use_backend(backend):
            ct_vpu, dec_vpu = pipeline()

        assert backend.kernel_invocations > 0
        for p_ref, p_vpu in zip(ct_ref.parts, ct_vpu.parts):
            np.testing.assert_array_equal(p_ref.residues, p_vpu.residues)
        np.testing.assert_array_equal(dec_ref, dec_vpu)
        np.testing.assert_allclose(dec_vpu, np.roll(z1 * z2, -2), atol=3e-3)
