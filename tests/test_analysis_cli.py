"""End-to-end tests for ``python -m repro.analysis`` (the CI contract:
exit 0 and clean JSON when the repo is healthy, exit 1 with findings
when anything regresses)."""

import json

import pytest

from repro.analysis.cli import main


class TestSections:
    def test_full_run_is_clean(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fhecheck: clean" in out

    def test_json_output_machine_readable(self, capsys):
        assert main(["plans", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["sections"] == ["plans"]
        assert payload["findings"] == []

    def test_unknown_section_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_lint_section_respects_root(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x):\n    return x.astype(np.int64)\n")
        assert main(["lint", "--lint-root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FHC002" in out

    def test_lint_findings_reported_in_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x):\n    return x.astype(np.int64)\n")
        assert main(["lint", "--json", "--lint-root", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "FHC002"
        assert str(bad) in payload["findings"][0]["location"]
