"""End-to-end tests for ``python -m repro.analysis`` (the CI contract:
exit 0 and clean JSON when the repo is healthy, exit 1 with findings
when anything regresses)."""

import json

import pytest

from repro.analysis.cli import main


class TestSections:
    def test_full_run_is_clean(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fhecheck: clean" in out

    def test_json_output_machine_readable(self, capsys):
        assert main(["plans", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["sections"] == ["plans"]
        assert payload["findings"] == []

    def test_unknown_section_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_lint_section_respects_root(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x):\n    return x.astype(np.int64)\n")
        assert main(["lint", "--lint-root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FHC002" in out

    def test_lint_findings_reported_in_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x):\n    return x.astype(np.int64)\n")
        assert main(["lint", "--json", "--lint-root", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "FHC002"
        assert str(bad) in payload["findings"][0]["location"]

    def test_new_sections_run_clean(self, capsys):
        assert main(["dataflow", "resources", "ctstate"]) == 0
        out = capsys.readouterr().out
        assert "dataflow" in out
        assert "staged" in out
        assert "ctstate" in out
        assert "refuses a half-peak SRAM" in out
        assert "refuses a dropped rescale" in out


class TestOutputFormats:
    def test_sarif_format_validates(self, capsys):
        from repro.analysis.sarif import validate_sarif

        assert main(["plans", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert validate_sarif(payload) == []

    def test_output_file_keeps_text_summary(self, tmp_path, capsys):
        out_file = tmp_path / "fhecheck.sarif"
        assert main(["plans", "--format", "sarif",
                     "--output", str(out_file)]) == 0
        stdout = capsys.readouterr().out
        assert "fhecheck: clean" in stdout
        payload = json.loads(out_file.read_text())
        assert payload["runs"][0]["tool"]["driver"]["name"]

    def test_validate_sarif_accepts_emitted_envelope(self, tmp_path,
                                                     capsys):
        out_file = tmp_path / "fhecheck.sarif"
        assert main(["plans", "--format", "sarif",
                     "--output", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["--validate-sarif", str(out_file)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_validate_sarif_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.sarif"
        bad.write_text('{"version": "1.0.0"}')
        assert main(["--validate-sarif", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_validate_sarif_missing_file(self, tmp_path, capsys):
        assert main(["--validate-sarif", str(tmp_path / "nope.sarif")]) == 1


class TestExitCodes:
    """The documented CI contract: 0 clean, 1 findings, 2 usage."""

    def test_usage_error_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--format", "yaml"])
        assert excinfo.value.code == 2

    def test_findings_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x):\n    return x.astype(np.int64)\n")
        assert main(["lint", "--lint-root", str(tmp_path)]) == 1

    def test_warnings_alone_exit_0(self, tmp_path, capsys):
        stale = tmp_path / "stale.py"
        stale.write_text("def f(x):\n    return x  # fhecheck: ok=FHC001\n")
        assert main(["lint", "--lint-root", str(tmp_path)]) == 0
        assert "FHC010" in capsys.readouterr().out
