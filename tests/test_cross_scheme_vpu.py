"""Integration: the integer schemes (BGV) also run their kernels on the
VPU backend — one substrate, all schemes, one mux-level model."""

import numpy as np
import pytest

from repro.fhe.backend import VpuBackend, use_backend
from repro.fhe.bgv import BgvContext, BgvParams

T = 257


class TestBgvOnVpu:
    def test_bgv_multiply_bit_identical(self):
        params = BgvParams(n=64, levels=2, plaintext_modulus=T,
                           prime_bits=28)
        rng = np.random.default_rng(0)
        v1 = rng.integers(0, T, 64).astype(np.int64)
        v2 = rng.integers(0, T, 64).astype(np.int64)

        ctx = BgvContext(params, seed=5)
        ref = ctx.multiply(ctx.encrypt(v1), ctx.encrypt(v2))

        backend = VpuBackend(m=16)  # N=64 on 16 lanes: ragged (16x4)
        with use_backend(backend):
            ctx2 = BgvContext(params, seed=5)
            ct = ctx2.multiply(ctx2.encrypt(v1), ctx2.encrypt(v2))
            for p_ref, p_vpu in zip(ref.parts, ct.parts):
                np.testing.assert_array_equal(p_ref.residues, p_vpu.residues)
            got = ctx2.decrypt(ct)
        assert backend.kernel_invocations > 0
        expected = (v1.astype(object) * v2) % T
        np.testing.assert_array_equal(got, expected.astype(np.int64))

    def test_bgv_rotation_on_vpu(self):
        params = BgvParams(n=64, levels=2, plaintext_modulus=T,
                           prime_bits=28)
        v = np.arange(64, dtype=np.int64)
        backend = VpuBackend(m=16)
        with use_backend(backend):
            ctx = BgvContext(params, seed=6)
            ctx.generate_galois_keys([1])
            got = ctx.decrypt(ctx.rotate(ctx.encrypt(v), 1))
        half = 32
        np.testing.assert_array_equal(got[:half], np.roll(v[:half] % T, -1))
        np.testing.assert_array_equal(got[half:], np.roll(v[half:] % T, -1))
