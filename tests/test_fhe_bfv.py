"""Tests for the BFV scheme — completing the §II-A trio (CKKS, BGV, BFV)
on one substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.bfv import BfvContext
from repro.fhe.bgv import BgvParams

T = 257  # prime, T === 1 (mod 2*64)


@pytest.fixture(scope="module")
def ctx():
    return BfvContext(BgvParams(n=64, levels=2, plaintext_modulus=T,
                                prime_bits=28), seed=7)


def rand_slots(seed):
    return np.random.default_rng(seed).integers(0, T, 64).astype(np.int64)


class TestBfvBasics:
    def test_delta_floor(self, ctx):
        assert ctx.delta == ctx.big_q // T

    def test_encrypt_decrypt_exact(self, ctx):
        v = rand_slots(0)
        np.testing.assert_array_equal(ctx.decrypt(ctx.encrypt(v)), v % T)

    def test_extremes(self, ctx):
        for v in [np.zeros(64, dtype=np.int64),
                  np.full(64, T - 1, dtype=np.int64)]:
            np.testing.assert_array_equal(ctx.decrypt(ctx.encrypt(v)), v % T)


class TestBfvHomomorphism:
    def test_add_sub(self, ctx):
        v1, v2 = rand_slots(1), rand_slots(2)
        np.testing.assert_array_equal(
            ctx.decrypt(ctx.add(ctx.encrypt(v1), ctx.encrypt(v2))),
            (v1 + v2) % T)
        np.testing.assert_array_equal(
            ctx.decrypt(ctx.sub(ctx.encrypt(v1), ctx.encrypt(v2))),
            (v1 - v2) % T)

    def test_add_plain(self, ctx):
        v1, v2 = rand_slots(3), rand_slots(4)
        np.testing.assert_array_equal(
            ctx.decrypt(ctx.add_plain(ctx.encrypt(v1), v2)), (v1 + v2) % T)

    def test_multiply_plain(self, ctx):
        v1, v2 = rand_slots(5), rand_slots(6)
        expected = (v1.astype(object) * v2) % T
        np.testing.assert_array_equal(
            ctx.decrypt(ctx.multiply_plain(ctx.encrypt(v1), v2)),
            expected.astype(np.int64))

    def test_multiply_exact(self, ctx):
        v1, v2 = rand_slots(7), rand_slots(8)
        out = ctx.decrypt(ctx.multiply(ctx.encrypt(v1), ctx.encrypt(v2)))
        expected = (v1.astype(object) * v2) % T
        np.testing.assert_array_equal(out, expected.astype(np.int64))

    def test_scale_invariance_depth_two(self, ctx):
        """No modulus switching, no scale tracking: just multiply again."""
        v1, v2, v3 = rand_slots(9), rand_slots(10), rand_slots(11)
        ct = ctx.multiply(ctx.encrypt(v1), ctx.encrypt(v2))
        out = ctx.decrypt(ctx.multiply(ct, ctx.encrypt(v3)))
        expected = (v1.astype(object) * v2 * v3) % T
        np.testing.assert_array_equal(out, expected.astype(np.int64))

    def test_three_part_rejected(self, ctx):
        from repro.fhe.bfv import BfvCiphertext

        ct = ctx.encrypt(rand_slots(12))
        with pytest.raises(ValueError):
            ctx.multiply(BfvCiphertext(ct.parts * 2), ct)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_affine_property(self, ctx, seed):
        rng = np.random.default_rng(seed)
        v = rng.integers(0, T, 64).astype(np.int64)
        w = rng.integers(0, T, 64).astype(np.int64)
        out = ctx.decrypt(ctx.add_plain(ctx.multiply_plain(ctx.encrypt(v), w),
                                        w))
        expected = ((v.astype(object) * w) + w) % T
        np.testing.assert_array_equal(out, expected.astype(np.int64))


class TestSchemeTrio:
    def test_all_three_schemes_share_the_keyswitch(self, ctx):
        """CKKS, BGV and BFV all relinearize through the same module —
        the unified-substrate evidence for §II-A."""
        from repro.fhe.bgv import BgvContext
        from repro.fhe.ckks import CkksContext
        from repro.fhe.keyswitch import KeySwitchKey
        from repro.fhe.params import toy_params

        ckks = CkksContext(toy_params(), seed=1)
        bgv = BgvContext(BgvParams(n=64, levels=2, plaintext_modulus=T,
                                   prime_bits=28), seed=1)
        for context in (ckks, bgv, ctx):
            assert isinstance(context.relin_key, KeySwitchKey)
