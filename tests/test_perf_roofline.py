"""Tests for the roofline placement of FHE operations."""

import pytest

from repro.accel import Accelerator
from repro.perf.roofline import (
    machine_balance,
    place_operation,
    render_roofline,
    roofline_table,
)


@pytest.fixture(scope="module")
def acc():
    return Accelerator(num_vpus=8, lanes=64)


class TestRoofline:
    def test_machine_balance_positive(self, acc):
        assert machine_balance(acc) > 0

    def test_intensity_ordering(self, acc):
        """HAdd touches each element once (lowest intensity); HMult's
        keyswitch reuses operands across digits (highest)."""
        points = {p.operation: p for p in roofline_table(acc)}
        assert (points["hadd"].arithmetic_intensity
                < points["hrot"].arithmetic_intensity)
        assert (points["hadd"].arithmetic_intensity
                <= points["hmult"].arithmetic_intensity * 1.5)

    def test_hadd_sits_at_the_knee(self, acc):
        """Pure element-wise work (1 lane-op per 16 streamed bytes)
        lands exactly at the default machine balance: any bandwidth loss
        starves the lanes — the structural reason FHE accelerators
        battle scratchpad bandwidth — while keyswitch-heavy ops reuse
        operands and sit comfortably in the compute-bound region."""
        hadd = place_operation(acc, "hadd", 4096, 5)
        assert hadd.arithmetic_intensity == pytest.approx(
            machine_balance(acc))
        hmult = place_operation(acc, "hmult", 4096, 5)
        assert hmult.arithmetic_intensity > 5 * hadd.arithmetic_intensity

    def test_halved_bandwidth_starves_hadd(self):
        from repro.accel import OnChipSram

        starved = Accelerator(num_vpus=8, lanes=64,
                              sram=OnChipSram(words_per_bank_per_cycle=32))
        point = place_operation(starved, "hadd", 4096, 5)
        assert not point.compute_bound

    def test_unknown_operation(self, acc):
        with pytest.raises(ValueError):
            place_operation(acc, "bootstrap", 4096, 5)

    def test_render(self, acc):
        text = render_roofline(roofline_table(acc))
        assert "machine balance" in text
        assert "hmult" in text and ("memory" in text or "compute" in text)

    def test_more_vpus_raise_balance(self):
        small = machine_balance(Accelerator(num_vpus=2, lanes=64))
        big = machine_balance(Accelerator(num_vpus=16, lanes=64))
        assert big > small  # same SRAM, more lanes to feed
