"""SARIF 2.1.0 rendering and envelope validation."""

import json

from repro.analysis.findings import Finding, Severity
from repro.analysis.sarif import (
    RULE_DESCRIPTIONS,
    SARIF_SCHEMA,
    SARIF_VERSION,
    to_sarif,
    validate_sarif,
)


def _finding(rule="FHC002", severity=Severity.ERROR,
             location="src/repro/x.py:41",
             message="narrowing without a guard") -> Finding:
    return Finding("lint", rule, severity, location, message)


class TestToSarif:
    def test_empty_findings_valid_envelope(self):
        payload = to_sarif([])
        assert payload["version"] == SARIF_VERSION
        assert payload["$schema"] == SARIF_SCHEMA
        assert payload["runs"][0]["results"] == []
        assert validate_sarif(payload) == []

    def test_round_trips_through_json(self):
        payload = json.loads(json.dumps(to_sarif([_finding()])))
        assert validate_sarif(payload) == []

    def test_path_line_location_becomes_physical(self):
        result = to_sarif([_finding()])["runs"][0]["results"][0]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/x.py"
        assert loc["region"]["startLine"] == 41

    def test_symbolic_location_becomes_logical(self):
        finding = Finding("dataflow", "D001", Severity.ERROR,
                          "pc 12: Store", "read of r999 before any write")
        result = to_sarif([finding])["runs"][0]["results"][0]
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "pc 12: Store"

    def test_severity_maps_to_level(self):
        findings = [_finding(severity=Severity.ERROR),
                    _finding(rule="FHC010", severity=Severity.WARNING,
                             message="stale suppression")]
        results = to_sarif(findings)["runs"][0]["results"]
        assert [r["level"] for r in results] == ["error", "warning"]

    def test_all_emitted_rules_declared_by_driver(self):
        payload = to_sarif([_finding(rule=r) for r in
                            ("P001", "S004", "D003", "R002", "C006",
                             "FHC008")])
        declared = {rule["id"] for rule in
                    payload["runs"][0]["tool"]["driver"]["rules"]}
        assert {"P001", "S004", "D003", "R002", "C006", "FHC008"} <= declared

    def test_every_described_rule_family_present(self):
        # The catalogue must cover every family the passes can emit.
        families = {rule[:1] for rule in RULE_DESCRIPTIONS}
        assert {"P", "S", "D", "R", "C", "F"} <= families


class TestValidateSarif:
    def test_rejects_wrong_version(self):
        payload = to_sarif([])
        payload["version"] = "1.0.0"
        assert any("version" in p for p in validate_sarif(payload))

    def test_rejects_missing_driver_name(self):
        payload = to_sarif([])
        del payload["runs"][0]["tool"]["driver"]["name"]
        assert any("driver.name" in p for p in validate_sarif(payload))

    def test_rejects_undeclared_rule_id(self):
        payload = to_sarif([_finding()])
        payload["runs"][0]["results"][0]["ruleId"] = "ZZZ999"
        assert any("ZZZ999" in p for p in validate_sarif(payload))

    def test_rejects_missing_message_text(self):
        payload = to_sarif([_finding()])
        payload["runs"][0]["results"][0]["message"] = {}
        assert any("message.text" in p for p in validate_sarif(payload))

    def test_rejects_non_dict_payload(self):
        assert validate_sarif([]) != []
