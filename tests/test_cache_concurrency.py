"""Thread-safety of the module-level caches and the cache-reset
metrics contract (gauges zeroed on clear)."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.fhe.backend import VpuBackend, clear_caches
from repro.kernels.plan import get_plan, get_workspace, plan_cache
from repro.ntt.negacyclic import get_batched_ntt
from repro.ntt.tables import get_tables
from repro.obs import observe

Q = 998244353
THREADS = 8


def _hammer(fn, per_thread: int = 20):
    """Run ``fn`` concurrently from many threads, surfacing exceptions."""
    barrier = threading.Barrier(THREADS)

    def body():
        barrier.wait()
        return [fn() for _ in range(per_thread)]

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [pool.submit(body) for _ in range(THREADS)]
        return [f.result() for f in futures]


class TestNttTablesCache:
    def test_single_instance_under_concurrency(self):
        get_tables.cache_clear()
        results = _hammer(lambda: get_tables(256, Q))
        instances = {id(t) for batch in results for t in batch}
        assert len(instances) == 1

    def test_distinct_keys_distinct_instances(self):
        get_tables.cache_clear()
        a = get_tables(128, Q)
        b = get_tables(256, Q)
        assert a is not b and a.n == 128 and b.n == 256


class TestBatchedNttCache:
    def test_single_instance_under_concurrency(self):
        get_batched_ntt.cache_clear()
        primes = (Q,)
        results = _hammer(lambda: get_batched_ntt(64, primes))
        instances = {id(t) for batch in results for t in batch}
        assert len(instances) == 1


class TestPlanCache:
    def test_counters_exact_under_concurrency(self):
        plan_cache().clear()
        primes = (Q,)
        results = _hammer(lambda: get_plan(256, primes), per_thread=25)
        total_calls = sum(len(batch) for batch in results)
        cache = plan_cache()
        assert cache.misses == 1
        assert cache.hits == total_calls - 1
        instances = {id(p) for batch in results for p in batch}
        assert len(instances) == 1

    def test_workspaces_are_thread_local(self):
        """Scratch buffers must not be shared across threads — two
        concurrent same-shape dispatches would clobber each other."""
        seen: dict[int, int] = {}
        lock = threading.Lock()

        def body():
            buf = get_workspace(4, 64)
            with lock:
                seen[threading.get_ident()] = id(buf)
            return buf

        _hammer(body, per_thread=1)
        # Same thread -> same buffer; different threads -> different.
        assert len(set(seen.values())) == len(seen)


class TestVpuProgramCache:
    def test_single_compile_under_concurrency(self):
        backend = VpuBackend(m=16)
        results = _hammer(lambda: backend._program("ntt", 64, Q),
                          per_thread=5)
        instances = {id(p) for batch in results for p in batch}
        assert len(instances) == 1
        total_calls = sum(len(batch) for batch in results)
        assert backend.program_cache_misses == 1
        assert backend.program_cache_hits == total_calls - 1
        assert backend.program_compilations == 1


class TestClearCachesMetricsReset:
    def test_clear_zeroes_cache_gauges(self):
        """Regression: a snapshot taken after clear_caches() must not
        report the dropped caches' stale hit/miss gauges."""
        with observe() as obs:
            obs.gauge("backend.program_cache.hits", 7)
            obs.gauge("backend.program_cache.misses", 3)
            obs.gauge("backend.compiled_plan_cache.hits", 5)
            obs.gauge("backend.compiled_plan_cache.size", 2)
            obs.gauge("pool.healthy_vpus", 4)  # unrelated gauge survives
            clear_caches()
            gauges = obs.metrics.gauges
            assert gauges["backend.program_cache.hits"] == 0
            assert gauges["backend.program_cache.misses"] == 0
            assert gauges["backend.compiled_plan_cache.hits"] == 0
            assert gauges["backend.compiled_plan_cache.size"] == 0
            assert gauges["pool.healthy_vpus"] == 4

    def test_clear_without_observer_is_safe(self):
        clear_caches()  # no hook installed: must not raise

    def test_zero_gauges_returns_match_count(self):
        with observe() as obs:
            obs.gauge("x.a", 1)
            obs.gauge("x.b", 2)
            obs.gauge("y.c", 3)
            assert obs.zero_gauges("x.") == 2
            assert obs.metrics.gauges["y.c"] == 3

    def test_caches_rebuild_after_clear(self):
        clear_caches()
        tables = get_tables(256, Q)
        out = np.asarray(tables.bitrev)
        assert out.shape == (256,)
        assert plan_cache().misses == 0  # fresh counters
