"""Tests for hoisted rotations (shared digit decomposition)."""

import numpy as np
import pytest

from repro.fhe.ckks import CkksContext
from repro.fhe.params import toy_params


@pytest.fixture(scope="module")
def ctx():
    context = CkksContext(toy_params(), seed=55)
    context.generate_galois_keys([1, 2, 3, 4])
    return context


def rand(ctx, seed):
    rng = np.random.default_rng(seed)
    return (rng.uniform(-1, 1, ctx.params.slots)
            + 1j * rng.uniform(-1, 1, ctx.params.slots))


class TestHoistedRotations:
    def test_matches_individual_rotations(self, ctx):
        z = rand(ctx, 0)
        ct = ctx.encrypt(z)
        hoisted = ctx.rotate_hoisted(ct, [1, 2, 4])
        for steps, h in zip([1, 2, 4], hoisted):
            individual = ctx.decrypt(ctx.rotate(ct, steps))
            np.testing.assert_allclose(ctx.decrypt(h), individual, atol=1e-3)
            np.testing.assert_allclose(ctx.decrypt(h), np.roll(z, -steps),
                                       atol=2e-3)

    def test_zero_rotation_passthrough(self, ctx):
        z = rand(ctx, 1)
        ct = ctx.encrypt(z)
        [out] = ctx.rotate_hoisted(ct, [0])
        np.testing.assert_allclose(ctx.decrypt(out), z, atol=1e-3)

    def test_missing_key_raises(self, ctx):
        ct = ctx.encrypt(rand(ctx, 2))
        with pytest.raises(KeyError):
            ctx.rotate_hoisted(ct, [7])

    def test_rotate_sum_via_hoisting(self, ctx):
        """The BSGS inner loop shape: all baby rotations from one
        decomposition, then summed."""
        z = rand(ctx, 3)
        ct = ctx.encrypt(z)
        rotations = ctx.rotate_hoisted(ct, [0, 1, 2, 3])
        acc = rotations[0]
        for r in rotations[1:]:
            acc = ctx.add(acc, r)
        expected = z + np.roll(z, -1) + np.roll(z, -2) + np.roll(z, -3)
        np.testing.assert_allclose(ctx.decrypt(acc), expected, atol=5e-3)

    def test_kernel_savings(self, ctx):
        """Hoisting must hit the NTT backend far fewer times than
        individual rotations (the whole point)."""
        from repro.fhe import backend as backend_mod

        class CountingBackend(backend_mod.NumpyBackend):
            def __init__(self):
                self.ntt_calls = 0

            def forward_ntt_batch(self, residues, primes):
                self.ntt_calls += len(primes)
                return super().forward_ntt_batch(residues, primes)

            def inverse_ntt_batch(self, values, primes):
                self.ntt_calls += len(primes)
                return super().inverse_ntt_batch(values, primes)

        z = rand(ctx, 4)
        ct = ctx.encrypt(z)
        steps = [1, 2, 3, 4]

        counter = CountingBackend()
        with backend_mod.use_backend(counter):
            ctx.rotate_hoisted(ct, steps)
        hoisted_calls = counter.ntt_calls

        counter = CountingBackend()
        with backend_mod.use_backend(counter):
            for s in steps:
                ctx.rotate(ct, s)
        individual_calls = counter.ntt_calls

        assert hoisted_calls < individual_calls / 1.5
