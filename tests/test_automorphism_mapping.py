"""Tests for Galois/automorphism index maps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automorphism import (
    AffinePermutation,
    apply_galois_coeffs,
    galois_element_for_rotation,
    galois_eval_permutation,
    paper_sigma,
)
from repro.ntt import NegacyclicNtt

Q = 998244353


class TestAffinePermutation:
    def test_is_bijection(self):
        for n in [2, 8, 64]:
            for k in range(1, min(n, 16), 2):
                for s in [0, 1, n // 2]:
                    p = AffinePermutation(n, k, s)
                    assert sorted(p.dest(i) for i in range(n)) == list(range(n))

    def test_rejects_even_multiplier(self):
        with pytest.raises(ValueError):
            AffinePermutation(8, 2, 0)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            AffinePermutation(6, 5, 0)

    def test_apply_semantics(self):
        # "element at i moves to dest(i)"
        p = AffinePermutation(8, 3, 1)
        x = np.arange(8)
        out = p.apply(x)
        for i in range(8):
            assert out[p.dest(i)] == i

    def test_inverse(self):
        p = AffinePermutation(64, 5, 17)
        x = np.random.default_rng(0).integers(0, 100, 64)
        np.testing.assert_array_equal(p.inverse().apply(p.apply(x)), x)

    def test_source_inverts_dest(self):
        p = AffinePermutation(32, 9, 5)
        for i in range(32):
            assert p.source(p.dest(i)) == i

    def test_compose(self):
        a = AffinePermutation(16, 3, 2)
        b = AffinePermutation(16, 5, 7)
        x = np.arange(16)
        np.testing.assert_array_equal(
            b.compose(a).apply(x), b.apply(a.apply(x))
        )

    def test_shift_distance_bit_property(self):
        """Bit b of the shift distance depends only on i mod 2^b — the
        property that makes single-pass routing possible."""
        for n in [8, 64, 256]:
            for k in [3, 5, n - 1, 2 * n // 4 + 1]:
                for s in [0, 3, n // 2 + 1]:
                    d = AffinePermutation(n, k, s).shift_distances()
                    for b in range(n.bit_length() - 1):
                        for a in range(1 << b):
                            bits = {(int(d[i]) >> b) & 1
                                    for i in range(a, n, 1 << b)}
                            assert len(bits) == 1

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_bijection_property(self, log_n, k_raw, s):
        n = 1 << log_n
        p = AffinePermutation(n, 2 * k_raw + 1, s)
        assert len({p.dest(i) for i in range(n)}) == n


class TestPaperSigma:
    def test_paper_example(self):
        """Paper §II-C: N=64, r=2: elements 0,1,2,3,4 -> 0,25,50,11,36...
        the paper lists destinations of a rotated mapping; verify with
        Eq.(1) directly: sigma(i) = i * 5^2 mod 64."""
        sigma = paper_sigma(64, 2)
        assert sigma.multiplier == 25
        for i in range(64):
            assert sigma.dest(i) == i * 25 % 64

    def test_identity_rotation(self):
        assert paper_sigma(64, 0).is_identity()

    def test_rejects_even_phi(self):
        with pytest.raises(ValueError):
            paper_sigma(64, 1, phi=4)

    def test_distinct_sigmas_bounded(self):
        """At most m/2 distinct automorphisms exist (the odd multipliers):
        justifies the control-table size (paper §IV-B)."""
        n = 64
        multipliers = {paper_sigma(n, r).multiplier for r in range(200)}
        assert len(multipliers) <= n // 2


class TestGaloisEval:
    @pytest.mark.parametrize("n", [8, 32, 256])
    @pytest.mark.parametrize("r", [0, 1, 2, 5])
    def test_eval_permutation_matches_polynomial_action(self, n, r):
        """NTT(p(X^k)) must equal the affine permutation of NTT(p)."""
        ntt = NegacyclicNtt(n, Q)
        rng = np.random.default_rng(n + r)
        coeffs = rng.integers(0, Q, size=n, dtype=np.uint64)
        k = galois_element_for_rotation(n, r)
        perm = galois_eval_permutation(n, k)
        transformed = apply_galois_coeffs(coeffs, k, Q)
        np.testing.assert_array_equal(
            ntt.forward(transformed), perm.apply(ntt.forward(coeffs))
        )

    def test_conjugation_element(self):
        """k = 2n - 1 (conjugation) is also a valid odd Galois element."""
        n = 16
        ntt = NegacyclicNtt(n, Q)
        rng = np.random.default_rng(1)
        coeffs = rng.integers(0, Q, size=n, dtype=np.uint64)
        k = 2 * n - 1
        perm = galois_eval_permutation(n, k)
        transformed = apply_galois_coeffs(coeffs, k, Q)
        np.testing.assert_array_equal(
            ntt.forward(transformed), perm.apply(ntt.forward(coeffs))
        )

    def test_rejects_even_galois_element(self):
        with pytest.raises(ValueError):
            galois_eval_permutation(16, 4)
        with pytest.raises(ValueError):
            apply_galois_coeffs(np.zeros(16, dtype=np.uint64), 4, Q)

    def test_galois_composition(self):
        """Rotating by r1 then r2 equals rotating by r1+r2."""
        n = 32
        k1 = galois_element_for_rotation(n, 3)
        k2 = galois_element_for_rotation(n, 4)
        k12 = galois_element_for_rotation(n, 7)
        p1 = galois_eval_permutation(n, k1)
        p2 = galois_eval_permutation(n, k2)
        p12 = galois_eval_permutation(n, k12)
        x = np.arange(n)
        np.testing.assert_array_equal(p2.apply(p1.apply(x)), p12.apply(x))


class TestCoefficientAutomorphism:
    def test_k_one_is_identity(self):
        x = np.arange(16, dtype=np.uint64)
        np.testing.assert_array_equal(apply_galois_coeffs(x, 1, Q), x % Q)

    def test_applies_sign_flips(self):
        # p(X) = X on Z_q[X]/(X^4+1); p(X^7) = X^7 = -X^3.
        coeffs = np.array([0, 1, 0, 0], dtype=np.uint64)
        out = apply_galois_coeffs(coeffs, 7, Q)
        expected = np.array([0, 0, 0, Q - 1], dtype=np.uint64)
        np.testing.assert_array_equal(out, expected)

    def test_object_dtype(self):
        coeffs = np.array([1, 2, 3, 4], dtype=object)
        out = apply_galois_coeffs(coeffs, 3, 97)
        # p = 1+2X+3X^2+4X^3; p(X^3) = 1 + 2X^3 + 3X^6 + 4X^9
        #  X^6 = -X^2, X^9 = +X  ->  1 + 4X - 3X^2 + 2X^3
        assert list(out) == [1, 4, 94, 2]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=63))
    def test_invertible_property(self, log_n, k_raw):
        n = 1 << log_n
        k = (2 * k_raw + 1) % (2 * n)
        from repro.arith import mod_inverse
        k_inv = mod_inverse(k, 2 * n)
        rng = np.random.default_rng(k)
        coeffs = rng.integers(0, Q, size=n, dtype=np.uint64)
        roundtrip = apply_galois_coeffs(apply_galois_coeffs(coeffs, k, Q), k_inv, Q)
        np.testing.assert_array_equal(roundtrip, coeffs)
