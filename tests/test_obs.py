"""The observability layer: tracer, metrics, exporters, neutrality.

The load-bearing assertions here are the overhead-neutrality contract
(with the obs hook uninstalled, kernel outputs are bit-identical and
dispatch cycle counts integer-identical to an instrumented run) and the
attribution reconciliation (per-phase cycles sum exactly to the
backend's reported total).
"""

import json

import numpy as np

from repro.accel.dram import DramModel
from repro.accel.parallel import ParallelVpuPool
from repro.arith.primes import find_ntt_prime, find_ntt_primes
from repro.fault.injector import FaultInjector, FaultSpec
from repro.fhe.backend import VpuBackend, use_backend
from repro.fhe.params import toy_params
from repro.fhe.sampling import sample_uniform_poly
from repro.obs import (
    CAT_PHASE,
    Histogram,
    MetricsRegistry,
    Observer,
    Tracer,
    current_obs_hook,
    cycle_attribution,
    enable_from_env,
    install_obs_hook,
    observe,
)
from repro.obs.export import (
    format_attribution,
    host_envelope,
    metrics_snapshot,
    to_chrome_trace,
    validate_chrome_trace,
)

N = 64
M = 16


class TestTracer:
    def test_nesting_and_parents(self):
        t = Tracer()
        outer = t.begin("outer")
        inner = t.begin("inner")
        assert inner.parent is outer
        assert t.depth == 2
        t.end()
        t.end()
        assert t.depth == 0
        assert t.roots() == [outer]
        assert outer.children == [inner]

    def test_cycles_charge_innermost_open_span(self):
        t = Tracer()
        t.begin("outer")
        t.add_cycles(10)
        t.begin("inner")
        t.add_cycles(5)
        t.end()
        t.add_cycles(1)
        t.end()
        outer, inner = t.roots()[0], t.roots()[0].children[0]
        assert inner.cycles_self == 5
        assert outer.cycles_self == 11
        assert outer.subtree_cycles() == 16
        assert t.total_cycles() == 16

    def test_cycles_outside_any_span_are_dropped(self):
        t = Tracer()
        t.add_cycles(99)
        assert t.total_cycles() == 0

    def test_end_on_empty_stack_is_noop(self):
        t = Tracer()
        assert t.end() is None

    def test_unwind_closes_dangling_spans(self):
        t = Tracer()
        t.begin("a")
        t.begin("b")
        assert t.unwind() == 2
        assert t.depth == 0
        assert all(s.end_ns is not None for s in t.spans)

    def test_end_merges_args(self):
        t = Tracer()
        t.begin("a", cat="x", n=4)
        span = t.end(cycles=7)
        assert span.args == {"n": 4, "cycles": 7}
        assert span.cat == "x"


class TestCycleAttribution:
    def test_charges_nearest_phase_ancestor(self):
        t = Tracer()
        t.begin("phase.a", cat=CAT_PHASE)
        t.begin("vpu.execute")
        t.add_cycles(100)
        t.end()
        t.end()
        t.begin("vpu.execute")  # outside any phase
        t.add_cycles(7)
        t.end()
        table = cycle_attribution(t)
        assert table["phase.a"]["cycles"] == 100
        assert table["(unattributed)"]["cycles"] == 7
        assert sum(row["cycles"] for row in table.values()) \
            == t.total_cycles()

    def test_nested_phases_never_double_count(self):
        t = Tracer()
        t.begin("phase.outer", cat=CAT_PHASE)
        t.add_cycles(3)
        t.begin("phase.inner", cat=CAT_PHASE)
        t.add_cycles(10)
        t.end()
        t.end()
        table = cycle_attribution(t)
        assert table["phase.outer"]["cycles"] == 3
        assert table["phase.inner"]["cycles"] == 10
        assert sum(row["cycles"] for row in table.values()) == 13

    def test_format_attribution_mentions_every_phase(self):
        t = Tracer()
        t.begin("phase.a", cat=CAT_PHASE)
        t.add_cycles(5)
        t.end()
        text = format_attribution(t)
        assert "phase.a" in text and "total" in text


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        assert m.counter("a") == 5
        assert m.counter("missing") == 0

    def test_gauge_keeps_last_value(self):
        m = MetricsRegistry()
        m.gauge("g", 1.0)
        m.gauge("g", 2.5)
        assert m.gauges["g"] == 2.5

    def test_histogram_summary(self):
        m = MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            m.observe("h", v)
        h = m.histograms["h"].to_dict()
        assert h == {"count": 3, "total": 6.0, "mean": 2.0,
                     "min": 1.0, "max": 3.0}

    def test_empty_histogram_serializes(self):
        assert Histogram().to_dict()["count"] == 0

    def test_snapshot_deterministic_and_reset(self):
        m = MetricsRegistry()
        m.inc("b")
        m.inc("a")
        m.gauge("z", 1)
        snap = m.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        m.reset()
        assert m.snapshot() == {"counters": {}, "gauges": {},
                                "histograms": {}, "sketches": {}}


class TestHookManagement:
    def test_install_returns_previous(self):
        first = Observer()
        assert install_obs_hook(first) is None
        second = Observer()
        assert install_obs_hook(second) is first
        assert current_obs_hook() is second
        install_obs_hook(None)
        assert current_obs_hook() is None

    def test_observe_contextmanager_restores(self):
        assert current_obs_hook() is None
        with observe() as obs:
            assert current_obs_hook() is obs
        assert current_obs_hook() is None

    def test_enable_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert enable_from_env() is None
        monkeypatch.setenv("REPRO_TRACE", "1")
        obs = enable_from_env()
        assert obs is not None and current_obs_hook() is obs
        assert enable_from_env() is obs  # idempotent while active
        install_obs_hook(None)


class TestExporters:
    def _traced(self) -> Tracer:
        t = Tracer()
        t.begin("phase.a", cat=CAT_PHASE, n=4)
        t.begin("vpu.execute", cat="vpu")
        t.add_cycles(12)
        t.end()
        t.end()
        return t

    def test_chrome_trace_shape(self):
        trace = to_chrome_trace(self._traced(), "unit-test")
        assert validate_chrome_trace(trace) == []
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"phase.a", "vpu.execute"}
        execute = next(e for e in events if e["name"] == "vpu.execute")
        assert execute["args"]["cycles"] == 12
        phase = next(e for e in events if e["name"] == "phase.a")
        assert phase["args"]["cycles_subtree"] == 12
        assert json.dumps(trace)  # serializable

    def test_chrome_trace_closes_open_spans(self):
        t = Tracer()
        t.begin("dangling")
        trace = to_chrome_trace(t)
        assert validate_chrome_trace(trace) == []

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x"}]}) != []

    def test_metrics_snapshot_envelope(self):
        m = MetricsRegistry()
        m.inc("hits", 3)
        snap = metrics_snapshot(m, bench="obs", extra={"workload": "t"})
        assert snap["schema"] == 1
        assert snap["bench"] == "obs"
        assert set(snap["host"]) == {"machine", "python", "numpy"}
        assert snap["counters"]["hits"] == 3
        assert snap["workload"] == "t"

    def test_host_envelope_matches_bench_kernels_format(self):
        env = host_envelope("faults")
        assert env["schema"] == 1 and env["bench"] == "faults"


def _ntt_rows(seed: int = 11):
    primes = tuple(find_ntt_primes(2 * N, 28, 3))
    rng = np.random.default_rng(seed)
    rows = np.stack([rng.integers(0, q, size=N, dtype=np.uint64)
                     for q in primes])
    return rows, primes


class TestNeutrality:
    """Tracing off vs. on: bit-identical outputs, identical cycles."""

    def test_kernel_batch_bit_and_cycle_identical(self):
        rows, primes = _ntt_rows()
        baseline = VpuBackend(m=M)
        off = baseline.forward_ntt_batch(rows, primes)
        off_cycles = baseline.vpu.stats.cycles

        traced = VpuBackend(m=M)
        with observe() as obs:
            on = traced.forward_ntt_batch(rows, primes)
        assert np.array_equal(off, on)
        assert traced.vpu.stats.cycles == off_cycles
        assert obs.tracer.total_cycles() == off_cycles

    def test_keyswitch_phase_sum_reconciles_with_backend_total(self):
        from repro.fhe.keyswitch import (
            apply_keyswitch,
            generate_keyswitch_key,
            mod_down,
        )
        from repro.fhe.rns import get_basis

        params = toy_params()
        rng = np.random.default_rng(7)
        full = params.primes + (params.special_prime,)
        ksk = generate_keyswitch_key(
            params, sample_uniform_poly(params.n, full, rng),
            sample_uniform_poly(params.n, full, rng), rng)
        x = sample_uniform_poly(params.n, params.primes, rng)
        basis = get_basis(params.primes, params.special_prime)

        backend = VpuBackend(m=M)
        with use_backend(backend), observe() as obs:
            t0, t1 = apply_keyswitch(x, ksk, params)
            mod_down(t0, basis)
            mod_down(t1, basis)
        table = cycle_attribution(obs.tracer)
        assert "(unattributed)" not in table
        phase_names = set(table)
        assert {"keyswitch.decompose", "keyswitch.ntt",
                "keyswitch.mod_down"} <= phase_names
        assert sum(row["cycles"] for row in table.values()) \
            == backend.vpu.stats.cycles

    def test_dram_and_sram_traffic_metrics(self):
        from repro.accel.sram import OnChipSram

        dram = DramModel()
        sram = OnChipSram()
        with observe() as obs:
            dram.transfer(np.zeros(32, dtype=np.uint64))
            _, cycles = sram.stage(np.zeros(16, dtype=np.uint64),
                                   write=True)
        assert obs.metrics.counter("dram.bytes") == 32 * 8
        assert obs.metrics.histograms["dram.transfer_ns"].count == 1
        assert obs.metrics.counter("sram.bytes") == 16 * 8
        assert obs.metrics.counter("sram.stage_cycles") == cycles
        names = [s.name for s in obs.tracer.spans]
        assert "dram.transfer" in names and "sram.stage" in names


class TestIntegrityMetrics:
    """Integrity-layer counters surface through the metrics registry."""

    def test_detect_counts_flow_to_registry(self):
        from repro.fhe.backend import IntegrityBackend

        rows, primes = _ntt_rows()
        inner = VpuBackend(m=M)
        inner.vpu.install_fault_hook(FaultInjector(
            [FaultSpec("alu", "stuck1", cycle=0, bit=33, lane=2)]))
        backend = IntegrityBackend(inner, "detect")
        with observe() as obs:
            backend.forward_ntt_batch(rows, primes)
        assert backend.detections >= 1
        assert obs.metrics.counter("integrity.detections") \
            == backend.detections
        assert obs.metrics.counter("integrity.flagged") == backend.flagged


class TestCacheMetricsReset:
    """Satellite: clear_caches() resets the hit/miss counters and the
    quarantine state, observably through the metrics registry."""

    def test_hits_misses_counted_and_reset(self):
        rows, primes = _ntt_rows()
        backend = VpuBackend(m=M)
        with observe() as obs:
            backend.forward_ntt_batch(rows, primes)  # compiles: misses
            backend.forward_ntt_batch(rows, primes)  # replays: hits
            assert backend.program_cache_misses == len(primes)
            assert backend.program_cache_hits == len(primes)
            assert obs.metrics.gauges["backend.program_cache.misses"] \
                == len(primes)
            assert obs.metrics.gauges["backend.program_cache.hits"] \
                == len(primes)
            assert obs.metrics.gauges["backend.program_cache.size"] \
                == len(primes)

            backend.clear_caches()
            assert backend.program_cache_hits == 0
            assert backend.program_cache_misses == 0
            assert obs.metrics.gauges["backend.program_cache.hits"] == 0
            assert obs.metrics.gauges["backend.program_cache.misses"] == 0
            assert obs.metrics.gauges["backend.program_cache.size"] == 0
            assert obs.metrics.gauges["backend.quarantined_programs"] == 0
            assert obs.metrics.counter("backend.program_cache.clears") == 1

        # Lifetime compilation record survives the cache clear.
        assert backend.program_compilations == len(primes)

    def test_counters_are_plain_ints_without_hook(self):
        rows, primes = _ntt_rows()
        backend = VpuBackend(m=M)
        assert current_obs_hook() is None
        backend.forward_ntt_batch(rows, primes)
        backend.forward_ntt_batch(rows, primes)
        assert backend.program_cache_misses == len(primes)
        assert backend.program_cache_hits == len(primes)


class TestPoolObservability:
    """Satellite: scheduling figures stay consistent through the
    retry/retire path — a retired VPU's cycles still count as spent."""

    def test_retired_vpu_cycles_count_toward_total(self):
        q = find_ntt_prime(2 * N, 28)
        rng = np.random.default_rng(5)
        limbs = rng.integers(0, q, size=(4, N), dtype=np.uint64)
        pool = ParallelVpuPool(2, M, q, policy="retry")
        pool.vpus[0].install_fault_hook(FaultInjector(
            [FaultSpec("alu", "stuck1", cycle=0, bit=33, lane=0)]))
        with observe() as obs:
            _, report = pool.run_ntt_batch(limbs, N)

        assert 0 in report.quarantined_vpus
        # The retired unit burned real cycles before retirement; they
        # are part of total_cycles, never silently dropped.
        assert report.per_vpu_cycles[0] > 0
        assert report.total_cycles == sum(report.per_vpu_cycles)
        assert report.makespan_cycles == max(report.per_vpu_cycles)
        expected_util = report.total_cycles / (
            report.makespan_cycles * pool.num_vpus)
        assert report.utilization == expected_util
        assert 0.0 < report.utilization <= 1.0

        gauges = obs.metrics.gauges
        assert gauges["pool.makespan_cycles"] == report.makespan_cycles
        assert gauges["pool.total_cycles"] == report.total_cycles
        assert gauges["pool.utilization"] == round(report.utilization, 6)
        assert gauges["pool.quarantined_vpus"] == 1
        assert obs.metrics.counter("pool.retries") == report.retries
        assert obs.metrics.counter("pool.detections") == report.detections

    def test_clean_pool_utilization_and_span(self):
        q = find_ntt_prime(2 * N, 28)
        rng = np.random.default_rng(8)
        limbs = rng.integers(0, q, size=(4, N), dtype=np.uint64)
        pool = ParallelVpuPool(2, M, q)
        with observe() as obs:
            _, report = pool.run_ntt_batch(limbs, N)
        # Even split over two units: full utilization.
        assert report.utilization == 1.0
        assert report.speedup == report.utilization * pool.num_vpus
        names = [s.name for s in obs.tracer.spans]
        assert "pool.run_ntt_batch" in names
        # Every execution's cycles landed inside the pool span.
        assert obs.tracer.total_cycles() == report.total_cycles

    def test_pool_results_identical_with_tracing(self):
        q = find_ntt_prime(2 * N, 28)
        rng = np.random.default_rng(9)
        limbs = rng.integers(0, q, size=(3, N), dtype=np.uint64)
        baseline, base_report = ParallelVpuPool(2, M, q).run_ntt_batch(
            limbs, N)
        with observe():
            traced, traced_report = ParallelVpuPool(2, M, q).run_ntt_batch(
                limbs, N)
        assert np.array_equal(baseline, traced)
        assert base_report == traced_report
