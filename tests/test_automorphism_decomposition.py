"""Tests for the R x C and recursive shift decompositions (paper §IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automorphism import (
    AffinePermutation,
    StridedShift,
    column_decompose,
    merge_shifts,
    paper_sigma,
    recursive_shift_decomposition,
)


class TestStridedShift:
    def test_apply_basic(self):
        s = StridedShift(n=8, stride=2, offset=0, amount=1)
        x = np.arange(8)
        out = s.apply(x)
        # Evens [0,2,4,6] roll down by one subsequence slot -> [6,0,2,4].
        np.testing.assert_array_equal(out, [6, 1, 0, 3, 2, 5, 4, 7])

    def test_global_distance(self):
        s = StridedShift(n=8, stride=2, offset=1, amount=3)
        assert s.global_distance() == 6  # paper's m=8 example: odd group by 6

    def test_validation(self):
        with pytest.raises(ValueError):
            StridedShift(n=8, stride=3, offset=0, amount=1)
        with pytest.raises(ValueError):
            StridedShift(n=8, stride=2, offset=2, amount=1)

    def test_paper_m8_example(self):
        """§IV-B: sub-columns [0,2,4,6] and [1,3,5,7] shifted to
        [4,6,0,2] and [7,1,3,5].  The paper counts distances upward
        (2 and 3); in this library's downward convention those are
        amounts 2 and 1 (global distances 4 and 2)."""
        x = np.arange(8)
        even = StridedShift(8, 2, 0, 2)
        odd = StridedShift(8, 2, 1, 1)
        out = odd.apply(even.apply(x))
        np.testing.assert_array_equal(out[0::2], [4, 6, 0, 2])
        np.testing.assert_array_equal(out[1::2], [7, 1, 3, 5])


class TestColumnDecompose:
    @pytest.mark.parametrize("n,rows", [(64, 8), (64, 64), (256, 16), (4096, 64)])
    @pytest.mark.parametrize("r", [1, 2, 5])
    def test_recombination_matches(self, n, rows, r):
        perm = paper_sigma(n, r)
        cols = n // rows
        col_map, row_maps = column_decompose(perm, rows)
        for i in range(n):
            row, col = divmod(i, cols)
            new_row = row_maps[col].dest(row)
            new_col = col_map.dest(col)
            assert perm.dest(i) == new_row * cols + new_col

    def test_columns_stay_whole(self):
        """Eq. 3: all elements of a column land in one destination column."""
        perm = paper_sigma(4096, 3)
        cols = 64
        dest_cols = {}
        for i in range(4096):
            col = i % cols
            dc = perm.dest(i) % cols
            dest_cols.setdefault(col, set()).add(dc)
        assert all(len(v) == 1 for v in dest_cols.values())

    def test_affine_with_offset(self):
        perm = AffinePermutation(256, 7, 13)
        col_map, row_maps = column_decompose(perm, 16)
        for i in range(256):
            row, col = divmod(i, 16)
            assert perm.dest(i) == row_maps[col].dest(row) * 16 + col_map.dest(col)

    def test_row_maps_are_shift_when_k_mod_r_is_one(self):
        """The key insight: when k === 1 (mod R) the row action is a pure
        cyclic shift."""
        n, rows = 256, 2
        perm = AffinePermutation(n, 5, 0)  # 5 mod 2 == 1
        _, row_maps = column_decompose(perm, rows)
        assert all(rm.multiplier == 5 % rows == 1 for rm in row_maps)

    def test_validation(self):
        with pytest.raises(ValueError):
            column_decompose(paper_sigma(64, 1), 3)


class TestRecursiveShiftDecomposition:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 256])
    @pytest.mark.parametrize("k", [1, 3, 5, 7, 25])
    def test_composition_equals_automorphism(self, n, k):
        perm = AffinePermutation(n, k, 0)
        shifts = recursive_shift_decomposition(perm)
        x = np.arange(n)
        for s in shifts:
            x = s.apply(x)
        # x[j] = original index now at j; must equal perm.source(j).
        np.testing.assert_array_equal(
            x, [perm.source(j) for j in range(n)]
        )

    @pytest.mark.parametrize("n", [8, 64])
    def test_with_offsets(self, n):
        for k in range(1, min(n, 32), 2):
            for s in [0, 1, 5, n - 1]:
                perm = AffinePermutation(n, k, s)
                shifts = recursive_shift_decomposition(perm)
                x = np.arange(n)
                for sh in shifts:
                    x = sh.apply(x)
                np.testing.assert_array_equal(
                    x, [perm.source(j) for j in range(n)]
                )

    def test_merge_matches_distances(self):
        """Merging all strided shifts gives exactly the affine distance
        map — 'two shifts of distance 2 become one shift of distance 4'."""
        perm = paper_sigma(64, 3)
        shifts = recursive_shift_decomposition(perm)
        merged = merge_shifts(shifts, 64)
        np.testing.assert_array_equal(merged, perm.shift_distances())

    def test_identity_yields_no_shifts(self):
        assert recursive_shift_decomposition(AffinePermutation(64, 1, 0)) == []

    def test_pure_shift_yields_single_shift(self):
        shifts = recursive_shift_decomposition(AffinePermutation(64, 1, 5))
        assert len(shifts) == 1
        assert shifts[0].stride == 1 and shifts[0].amount == 5

    def test_strides_are_powers_of_two(self):
        shifts = recursive_shift_decomposition(paper_sigma(256, 7))
        for s in shifts:
            assert s.stride & (s.stride - 1) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=7),
           st.integers(min_value=0, max_value=127),
           st.integers(min_value=0, max_value=127))
    def test_decomposition_property(self, log_n, k_raw, s):
        n = 1 << log_n
        perm = AffinePermutation(n, 2 * k_raw + 1, s)
        merged = merge_shifts(recursive_shift_decomposition(perm), n)
        np.testing.assert_array_equal(merged, perm.shift_distances())
