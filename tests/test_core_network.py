"""Tests for the mux-level inter-lane network model."""

import numpy as np
import pytest

from repro.automorphism import AffinePermutation, affine_controls, paper_sigma
from repro.core import InterLaneNetwork, NetworkConfig
from repro.core.stages import CgStage, ShiftStage
from repro.ntt.constant_geometry import (
    dif_gather_permutation,
    dit_scatter_permutation,
)


class TestCgStage:
    @pytest.mark.parametrize("m", [4, 8, 64])
    def test_dif_matches_gather(self, m):
        stage = CgStage(m, "dif")
        x = np.arange(m)
        np.testing.assert_array_equal(stage.apply(x), x[dif_gather_permutation(m)])

    @pytest.mark.parametrize("m", [4, 8, 64])
    def test_dit_inverts_dif(self, m):
        dif = CgStage(m, "dif")
        dit = CgStage(m, "dit")
        x = np.arange(m)
        np.testing.assert_array_equal(dit.apply(dif.apply(x)), x)

    def test_inactive_is_identity(self):
        stage = CgStage(8, "dif")
        x = np.arange(8)
        np.testing.assert_array_equal(stage.apply(x, active=False), x)

    def test_grouped_mode(self):
        """§IV-A: a short last dimension splits the CG network into
        independent groups, each a small CG network."""
        m, g = 16, 4
        stage = CgStage(m, "dif")
        x = np.arange(m)
        out = stage.apply(x, group_size=g)
        small = dif_gather_permutation(g)
        for block in range(m // g):
            np.testing.assert_array_equal(
                out[block * g:(block + 1) * g], x[block * g:(block + 1) * g][small]
            )

    def test_grouped_validation(self):
        stage = CgStage(16, "dif")
        with pytest.raises(ValueError):
            stage.apply(np.arange(16), group_size=3)
        with pytest.raises(ValueError):
            stage.apply(np.arange(16), group_size=32)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            CgStage(8, "foo")


class TestShiftStage:
    def test_uniform_shift(self):
        stage = ShiftStage(8, 2)
        x = np.arange(8)
        np.testing.assert_array_equal(stage.apply(x, (1, 1)), np.roll(x, 2))

    def test_partial_groups(self):
        """Independent group signals: shift only the odd-lane cycle."""
        stage = ShiftStage(8, 2)
        x = np.arange(8)
        out = stage.apply(x, (0, 1))
        np.testing.assert_array_equal(out[0::2], x[0::2])
        np.testing.assert_array_equal(out[1::2], np.roll(x[1::2], 1))

    def test_control_signal_count(self):
        """§III-B: distances m/2, m/4, ..., 1 have m/2, m/4, ..., 1
        signals."""
        assert ShiftStage(8, 4).control_signal_count == 4
        assert ShiftStage(8, 2).control_signal_count == 2
        assert ShiftStage(8, 1).control_signal_count == 1

    def test_non_bijective_selects_rejected(self):
        stage = ShiftStage(4, 2)
        with pytest.raises(ValueError):
            stage.forward(np.arange(4), np.array([True, False, False, False]))

    def test_bad_distance(self):
        for d in [0, 3, 8]:
            with pytest.raises(ValueError):
                ShiftStage(8, d)


class TestInterLaneNetwork:
    def test_stage_and_control_counts(self):
        """m=64: 8 stages (2 CG + 6 shift); m-1 = 63 shift control bits."""
        net = InterLaneNetwork(64)
        assert net.stage_count == 8
        assert net.control_bit_count == 2 + 63

    def test_m4_merges_cg(self):
        net = InterLaneNetwork(4)
        assert net.merged_cg
        assert net.stage_count == 1 + 2

    def test_identity_config(self):
        net = InterLaneNetwork(16)
        x = np.arange(16)
        np.testing.assert_array_equal(net.traverse(x, NetworkConfig()), x)

    def test_cg_dif_pass(self):
        net = InterLaneNetwork(8)
        x = np.arange(8)
        out = net.traverse(x, NetworkConfig(cg="dif"))
        np.testing.assert_array_equal(out, x[dif_gather_permutation(8)])

    def test_cg_dit_pass(self):
        net = InterLaneNetwork(8)
        x = np.arange(8)
        out = net.traverse(x, NetworkConfig(cg="dit"))
        np.testing.assert_array_equal(out, x[dit_scatter_permutation(8)])

    @pytest.mark.parametrize("m", [8, 64])
    def test_automorphism_single_pass(self, m):
        """The headline: any automorphism in exactly one traversal."""
        net = InterLaneNetwork(m)
        x = np.random.default_rng(m).integers(0, 1000, m)
        for k in range(1, m, 2):
            perm = AffinePermutation(m, k)
            config = NetworkConfig(shift=affine_controls(m, k))
            before = net.passes
            np.testing.assert_array_equal(net.traverse(x, config), perm.apply(x))
            assert net.passes == before + 1

    def test_cg_and_shift_compose(self):
        """A pass may activate the CG stage and shifts together."""
        m = 8
        net = InterLaneNetwork(m)
        x = np.arange(m)
        config = NetworkConfig(cg="dif", shift=affine_controls(m, 1, 3))
        out = net.traverse(x, config)
        np.testing.assert_array_equal(out, np.roll(x[dif_gather_permutation(m)], 3))

    def test_traverse_rows(self):
        net = InterLaneNetwork(8)
        rows = np.arange(24).reshape(3, 8)
        sigma = paper_sigma(8, 1)
        config = NetworkConfig(shift=affine_controls(8, sigma.multiplier))
        out = net.traverse_rows(rows, config)
        for i in range(3):
            np.testing.assert_array_equal(out[i], sigma.apply(rows[i]))

    def test_validation(self):
        with pytest.raises(ValueError):
            InterLaneNetwork(2)
        with pytest.raises(ValueError):
            InterLaneNetwork(48)
        net = InterLaneNetwork(8)
        with pytest.raises(ValueError):
            net.traverse(np.arange(4), NetworkConfig())
        with pytest.raises(ValueError):
            NetworkConfig(cg="fft")
        with pytest.raises(ValueError):
            NetworkConfig(cg_group_size=4)
        with pytest.raises(ValueError):
            net.traverse(np.arange(8), NetworkConfig(shift=affine_controls(16, 3)))
