"""Seeded-mutation acceptance tests for the fhecheck v2 passes.

Each test plants one specific bug in an otherwise-verified artifact and
asserts the analysis produces *exactly* the expected finding — no
finding on the clean artifact, no cascade on the mutated one.  This is
the acceptance contract of the whole-program verification layer: a pass
that stays silent on its target bug, or that drowns it in secondary
findings, is broken either way.
"""

from repro.accel.sram import OnChipSram
from repro.analysis.ctstate import Op, check_sequence, \
    ckks_mult_rotate_sequence
from repro.analysis.dataflow import check_dataflow
from repro.analysis.resources import analyze_staged_plan, \
    keyswitch_staging_plan, ntt_staging_plan
from repro.arith.primes import find_ntt_prime
from repro.core.isa import Program, Store
from repro.fhe.params import default_params, toy_params
from repro.mapping.ntt import compile_negacyclic_ntt


def _error_rules(report) -> list[str]:
    return [f.rule for f in report.findings.errors]


class TestUninitializedReadMutation:
    """Drop-in compiler bug: an instruction reads a phantom register."""

    def _program(self) -> Program:
        return compile_negacyclic_ntt(256, 16, find_ntt_prime(512, 28))

    def test_clean_program_has_zero_findings(self):
        report = check_dataflow(self._program(), m=16)
        assert list(report.findings) == []

    def test_phantom_read_yields_exactly_d001(self):
        program = self._program()
        program.instructions.append(Store(src=999, addr=0))
        report = check_dataflow(program, m=16)
        assert [f.rule for f in report.findings] == ["D001"]
        assert "r999" in report.findings.findings[0].message


class TestStageOrderMutation:
    """Scheduling bug: two NTT dimension step-blocks are swapped."""

    def test_clean_plan_has_zero_findings(self):
        report = analyze_staged_plan(ntt_staging_plan(256, 16))
        assert list(report.findings) == []

    def test_swapped_dimensions_yield_exactly_r003(self):
        plan = ntt_staging_plan(256, 16)
        # Steps: [Stage x.v0 | Alloc/Compute/Evict dim0 | Alloc/Compute/
        # Evict dim1 | Writeback/Evict].  Swap the two dimension blocks:
        # dim1 then reads x.v1 before anything produced it.
        steps = list(plan.steps)
        assert len(steps) == 9
        mutated = type(plan)(
            label=plan.label,
            steps=tuple(steps[:1] + steps[4:7] + steps[1:4] + steps[7:]))
        report = analyze_staged_plan(mutated)
        assert [f.rule for f in report.findings] == ["R003"]
        assert "x.v1" in report.findings.findings[0].message


class TestShrunkSramMutation:
    """Provisioning bug: the scratchpad is half the proven peak."""

    def test_clean_plan_fits_default_sram(self):
        report = analyze_staged_plan(keyswitch_staging_plan(default_params()))
        assert list(report.findings) == []

    def test_half_peak_sram_yields_only_r001(self):
        plan = keyswitch_staging_plan(default_params())
        peak = analyze_staged_plan(plan).peak_words
        report = analyze_staged_plan(
            plan, OnChipSram(capacity_bytes=peak * 8 // 2))
        assert not report.ok
        assert set(_error_rules(report)) == {"R001"}


class TestDroppedRescaleMutation:
    """Scheduling bug: the first rescale vanishes from the pipeline."""

    def _ops(self) -> list[Op]:
        return ckks_mult_rotate_sequence(toy_params().levels)

    @staticmethod
    def _drop_first_rescale(ops: list[Op]) -> list[Op]:
        drop = next(i for i, op in enumerate(ops) if op.kind == "rescale")
        remap: dict[int, int] = {}
        mutated: list[Op] = []
        for index, op in enumerate(ops):
            if index == drop:
                # Consumers of the rescale now see its input directly.
                remap[index] = remap.get(op.srcs[0], op.srcs[0])
                continue
            remap[index] = len(mutated)
            mutated.append(Op(op.kind,
                              tuple(remap.get(s, s) for s in op.srcs),
                              op.arg))
        return mutated

    def test_clean_sequence_has_zero_findings(self):
        report = check_sequence(self._ops(), toy_params())
        assert list(report.findings) == []

    def test_dropped_rescale_yields_exactly_c002(self):
        mutated = self._drop_first_rescale(self._ops())
        report = check_sequence(mutated, toy_params(),
                                label="dropped rescale")
        assert [f.rule for f in report.findings] == ["C002"]
        assert "rescale" in report.findings.findings[0].message


class TestDroppedFsyncMutation:
    """Durability bug: the WAL append path loses its fsync — the exact
    write a kill-campaign crash would tear silently."""

    def _wal_source(self) -> str:
        from pathlib import Path

        import repro.recover.wal as wal

        return Path(wal.__file__).read_text(encoding="utf-8")

    def test_shipped_wal_is_clean(self):
        from repro.analysis.lint import lint_source

        findings = lint_source(self._wal_source(),
                               filename="src/repro/recover/wal.py")
        assert [f.rule for f in findings] == []

    def test_dropped_fsync_yields_only_fhc012(self):
        from repro.analysis.lint import lint_source

        mutated = self._wal_source().replace(
            "os.fsync(self._fh.fileno())\n", "\n")
        assert mutated != self._wal_source()  # the mutation landed
        findings = lint_source(mutated,
                               filename="src/repro/recover/wal.py")
        assert set(f.rule for f in findings) == {"FHC012"}
        # Both write sites in append() lose their durability evidence.
        assert [f.rule for f in findings].count("FHC012") >= 1
