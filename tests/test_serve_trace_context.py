"""Request-scoped tracing through the serving stack, under contention.

The barrier-hammer scenario: >= 8 tenants submit concurrently through
one engine, every worker interleaving on the shared tracer, and the
contract is that each request's spans — queue wait, dispatch gaps,
attempts, compute, verify — carry exactly that request's trace id,
the span forest is well formed, and per-trace cycle attribution
reconciles integer-exactly with the backend's counted model cycles.
These are the properties the retrospective-span design could not give:
with interleaved workers a single implicit stack misattributes both
parents and cycles.
"""

import asyncio
import json

from repro.obs import (
    Observer,
    check_span_tree,
    install_obs_hook,
    observe,
    per_trace_cycles,
)
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.recover.journal import RequestJournal
from repro.serve.chaos import run_chaos_campaign
from repro.serve.deadline import Deadline
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.executor import SimulatedExecutor
from repro.serve.requests import STATUS_OK, ServeRequest

TENANTS = 8
PER_TENANT = 6


def run(coro):
    return asyncio.run(coro)


def _request(request_id: int, tenant: str,
             op: str = "hmult") -> ServeRequest:
    return ServeRequest(request_id, tenant, op, Deadline.after(5.0),
                        payload=request_id)


async def _hammer(engine: ServeEngine):
    """All tenants released at one barrier; returns results by id.
    (Hand-rolled barrier: asyncio.Barrier needs Python >= 3.11.)"""
    release = asyncio.Event()
    waiting = 0

    async def tenant(t: int):
        nonlocal waiting
        name = f"tenant-{t}"
        waiting += 1
        if waiting == TENANTS:
            release.set()
        await release.wait()
        return [await engine.submit(_request(t * 1000 + i, name))
                for i in range(PER_TENANT)]

    groups = await asyncio.gather(*(tenant(t) for t in range(TENANTS)))
    return [r for group in groups for r in group]


class TestBarrierHammer:
    def _run_observed(self):
        observer = Observer()
        previous = install_obs_hook(observer)
        try:
            async def main():
                async with ServeEngine(
                        SimulatedExecutor(seed=5),
                        ServeConfig(workers=4, seed=5)) as engine:
                    return await _hammer(engine)

            results = run(main())
        finally:
            install_obs_hook(previous)
        assert observer.tracer.unwind() == 0
        return observer, results

    def test_one_trace_per_request_with_correct_spans(self):
        observer, results = self._run_observed()
        assert len(results) == TENANTS * PER_TENANT
        assert all(r.status == STATUS_OK for r in results)

        roots = {}
        for span in observer.tracer.spans:
            if span.name == "serve.request":
                assert span.trace_id != 0
                assert span.parent_id == 0
                roots[span.args["request"]] = span.trace_id
        assert len(roots) == TENANTS * PER_TENANT
        assert len(set(roots.values())) == len(roots)  # distinct traces

        # Every request-stamped serve span belongs to its request's
        # trace — no cross-request bleed under worker interleaving.
        for span in observer.tracer.spans:
            rid = span.args.get("request")
            if rid is not None and span.trace_id:
                assert span.trace_id == roots[rid], (
                    f"span {span.name!r} for request {rid} landed on "
                    f"trace {span.trace_id}, expected {roots[rid]}")

        # Each trace carries the full request lifecycle.
        names_by_trace = {}
        for span in observer.tracer.spans:
            if span.trace_id:
                names_by_trace.setdefault(span.trace_id,
                                          set()).add(span.name)
        for trace_id, names in names_by_trace.items():
            assert {"serve.request", "serve.queue", "serve.dispatch",
                    "serve.attempt", "serve.compute",
                    "serve.verify"} <= names, (trace_id, names)

    def test_span_tree_well_formed_and_exportable(self):
        observer, _ = self._run_observed()
        assert check_span_tree(observer.tracer) == []
        trace = to_chrome_trace(observer.tracer)
        assert validate_chrome_trace(trace) == []
        json.dumps(trace)

    def test_per_trace_cycles_reconcile_exactly(self):
        observer, _ = self._run_observed()
        totals = per_trace_cycles(observer.tracer)
        traced = sum(c for tid, c in totals.items() if tid)
        counted = int(observer.metrics.counters["serve.model_cycles"])
        assert traced == counted
        assert totals.get(0, 0) == 0  # nothing escaped its request
        assert sum(totals.values()) == observer.tracer.total_cycles()

    def test_tenant_slo_series_published(self):
        observer, results = self._run_observed()
        counters = observer.metrics.counters
        for t in range(TENANTS):
            key = f"serve.tenant.tenant-{t}.requests"
            assert counters.get(key) == PER_TENANT
            sketch = observer.metrics.sketch(
                f"serve.tenant.tenant-{t}.latency_s")
            assert sketch is not None and sketch.count == PER_TENANT

    def test_untraced_engine_still_serves(self):
        """No observer installed: no ids minted, no spans, same results."""
        async def main():
            async with ServeEngine(
                    SimulatedExecutor(seed=5),
                    ServeConfig(workers=4, seed=5)) as engine:
                return await _hammer(engine)

        results = run(main())
        assert all(r.status == STATUS_OK for r in results)


class TestChaosSpanContract:
    def test_chaos_campaign_traces_stay_well_formed(self):
        """Retries, degrades, drops, stragglers, watchdog kills — the
        span-tree and attribution checks ride inside the campaign's own
        violation list when an observer is installed."""
        with observe() as observer:
            outcome = run_chaos_campaign(requests=250, seed=11,
                                         min_injections=40)
        assert outcome.passed, outcome.violations
        traced = sum(c for tid, c in
                     per_trace_cycles(observer.tracer).items() if tid)
        assert traced == int(
            observer.metrics.counters["serve.model_cycles"])
        # Retried requests keep one trace across attempts.
        attempts_by_trace = {}
        for span in observer.tracer.spans:
            if span.name == "serve.attempt" and span.trace_id:
                attempts_by_trace.setdefault(span.trace_id, []).append(
                    span.args["attempt"])
        retried = {tid: sorted(a) for tid, a in attempts_by_trace.items()
                   if len(a) > 1}
        assert retried, "campaign produced no retries to check"
        for trace_id, attempts in retried.items():
            assert attempts == list(range(1, len(attempts) + 1))


class TestJournalTraceStamp:
    def test_submit_carries_trace_id_when_bound(self, tmp_path):
        journal = RequestJournal(tmp_path / "serve.wal")
        with observe() as observer:
            handle = observer.begin_request("serve.request", request=1)
            journal.record_submit(1, tenant="a", op="hmult", timeout_s=2.0)
            observer.end_request(handle)
        (pending,) = journal.pending()
        assert pending["trace"] == handle.ctx.trace_id
        journal.close()

    def test_journal_bytes_identical_with_obs_off(self, tmp_path):
        """With observability off the journal encoding is exactly the
        pre-tracing encoding — replayable by old readers, no id noise."""
        a = RequestJournal(tmp_path / "a.wal")
        a.record_submit(7, tenant="a", op="hmult", timeout_s=2.0)
        a.record_resolve(7, "ok")
        a.close()
        b = RequestJournal(tmp_path / "b.wal")
        b.record_submit(7, tenant="a", op="hmult", timeout_s=2.0)
        b.record_resolve(7, "ok")
        b.close()
        assert (tmp_path / "a.wal").read_bytes() == \
            (tmp_path / "b.wal").read_bytes()
        assert b"trace" not in (tmp_path / "a.wal").read_bytes()
