"""Live telemetry: quantile sketches, the snapshot ring, Prometheus
exposition, the SLO engine, and the zero-drift reset contract.

The load-bearing assertions: the log-histogram sketch is mergeable
exactly (fixed boundaries) and its quantiles land within bucket
resolution of the truth; ring-counter deltas drive the multi-window
burn-rate alerts (long window fires only when the confirmation window
agrees); alerts fold into admission-controller capacity; and resetting
(``zero_gauges`` + ``reset_telemetry``) is idempotent — a second reset
changes nothing, and no sketch/ring state survives the first.
"""

import pytest

from repro.obs import LogHistogram, MetricsRegistry, Observer, SnapshotRing
from repro.obs.slo import DEFAULT_WINDOWS, SloEngine, SloPolicy
from repro.obs.telemetry import prometheus_text
from repro.serve.admission import AdmissionController


class TestLogHistogram:
    def test_quantiles_within_bucket_resolution(self):
        sketch = LogHistogram()
        values = [0.001 * i for i in range(1, 1001)]  # 1ms .. 1s
        for v in values:
            sketch.observe(v)
        # One bucket spans 2^(1/8) ~ 9%; the midpoint is within ~4.5%.
        assert sketch.quantile(0.5) == pytest.approx(0.5, rel=0.06)
        assert sketch.quantile(0.99) == pytest.approx(0.99, rel=0.06)
        assert sketch.count == 1000
        assert sketch.total == pytest.approx(sum(values))

    def test_zero_and_negative_land_in_zero_bucket(self):
        sketch = LogHistogram()
        for v in (0.0, -1.0, 0.0, 5.0):
            sketch.observe(v)
        assert sketch.zero_count == 3
        assert sketch.quantile(0.5) == 0.0

    def test_merge_is_exact(self):
        """Merging two sketches equals one sketch fed both streams —
        the property windowed/multi-worker aggregation relies on."""
        a, b, both = LogHistogram(), LogHistogram(), LogHistogram()
        stream_a = [0.002, 0.004, 0.1, 3.0]
        stream_b = [0.001, 0.05, 0.05, 7.5, 0.0]
        for v in stream_a:
            a.observe(v)
            both.observe(v)
        for v in stream_b:
            b.observe(v)
            both.observe(v)
        a.merge(b)
        assert a.buckets == both.buckets
        assert a.zero_count == both.zero_count
        assert a.count == both.count
        assert a.total == pytest.approx(both.total)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert a.quantile(q) == both.quantile(q)

    def test_merge_rejects_mismatched_resolution(self):
        with pytest.raises(ValueError):
            LogHistogram(8).merge(LogHistogram(4))


class TestSnapshotRing:
    def test_tick_rate_limits(self):
        reg = MetricsRegistry()
        ring = SnapshotRing(capacity=8, period_s=1.0, clock=lambda: 0.0)
        assert ring.tick(reg, t=0.0) is not None
        assert ring.tick(reg, t=0.5) is None
        assert ring.tick(reg, t=1.0) is not None
        assert len(ring) == 2

    def test_capacity_evicts_oldest(self):
        reg = MetricsRegistry()
        ring = SnapshotRing(capacity=3, period_s=0.0)
        for i in range(5):
            ring.record(reg, t=float(i))
        assert len(ring) == 3
        assert [e["t"] for e in ring.entries] == [2.0, 3.0, 4.0]

    def test_window_counter_deltas(self):
        reg = MetricsRegistry()
        ring = SnapshotRing(capacity=16, period_s=0.0)
        for i in range(10):
            reg.inc("serve.tenant.a.requests", 10)
            ring.record(reg, t=float(i))
        pair = ring.window(4.0)
        assert pair is not None
        oldest, newest = pair
        delta = (newest["snapshot"]["counters"]["serve.tenant.a.requests"]
                 - oldest["snapshot"]["counters"]["serve.tenant.a.requests"])
        assert delta == 40  # entries at t=5..9 span the 4s window

    def test_window_needs_two_entries(self):
        ring = SnapshotRing()
        assert ring.window(60.0) is None
        ring.record(MetricsRegistry(), t=0.0)
        assert ring.window(60.0) is None


class TestPrometheusText:
    def test_exposition_shape_and_determinism(self):
        reg = MetricsRegistry()
        reg.inc("serve.requests", 3)
        reg.gauge("pool.healthy", 4)
        reg.observe("serve.latency_s", 0.010)
        reg.observe("serve.latency_s", 0.020)
        text = prometheus_text(reg)
        assert text.endswith("\n")
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 3" in text
        assert "repro_pool_healthy 4" in text
        assert "# TYPE repro_serve_latency_s summary" in text
        assert 'repro_serve_latency_s{quantile="0.5"}' in text
        assert "repro_serve_latency_s_count 2" in text
        assert text == prometheus_text(reg)  # deterministic

    def test_empty_registry_is_just_a_newline(self):
        assert prometheus_text(MetricsRegistry()) == "\n"


def _feed(reg: MetricsRegistry, ring: SnapshotRing, *,
          seconds: int, rps: int, bad_fraction: float,
          tenant: str = "a", start_t: float = 0.0) -> float:
    """Simulate ``seconds`` of traffic at ``rps`` with the given bad
    fraction, snapshotting once per second; returns the end time."""
    t = start_t
    for _ in range(seconds):
        t += 1.0
        reg.inc(f"serve.tenant.{tenant}.requests", rps)
        reg.inc(f"serve.tenant.{tenant}.bad", rps * bad_fraction)
        ring.record(reg, t=t)
    return t


class TestSloEngine:
    def test_quiet_traffic_fires_nothing(self):
        reg, ring = MetricsRegistry(), SnapshotRing(capacity=700, period_s=0)
        _feed(reg, ring, seconds=120, rps=50, bad_fraction=0.001)
        engine = SloEngine(policies=(SloPolicy("a"),))
        assert engine.evaluate(reg, ring) == []

    def test_sustained_burn_pages(self):
        # 30% bad on a 1% budget = burn 30 > both thresholds.
        reg, ring = MetricsRegistry(), SnapshotRing(capacity=700, period_s=0)
        _feed(reg, ring, seconds=120, rps=50, bad_fraction=0.30)
        engine = SloEngine(policies=(SloPolicy("a"),))
        alerts = engine.evaluate(reg, ring)
        kinds = {(a.kind, a.severity) for a in alerts}
        assert ("burn_rate", "page") in kinds
        assert engine.fired == alerts

    def test_recovered_incident_clears_via_confirmation_window(self):
        """The long window still carries the incident's bad counts, but
        the 1/12 confirmation window is clean — no page."""
        reg, ring = MetricsRegistry(), SnapshotRing(capacity=700, period_s=0)
        t = _feed(reg, ring, seconds=40, rps=50, bad_fraction=0.30)
        _feed(reg, ring, seconds=20, rps=50, bad_fraction=0.0, start_t=t)
        engine = SloEngine(policies=(
            SloPolicy("a", windows=((60.0, 14.4, "page"),)),))
        assert engine.evaluate(reg, ring) == []

    def test_latency_objective_alert(self):
        reg, ring = MetricsRegistry(), SnapshotRing(capacity=8, period_s=0)
        policy = SloPolicy("a", latency_objective_s=0.05, quantile=0.95)
        for _ in range(50):
            reg.observe(policy.metric("latency_s"), 0.200)
        engine = SloEngine(policies=(policy,))
        alerts = engine.evaluate(reg, ring)
        assert [a.kind for a in alerts] == ["latency"]
        assert alerts[0].value > 0.05
        assert alerts[0].severity == "ticket"

    def test_min_requests_suppresses_noise(self):
        reg, ring = MetricsRegistry(), SnapshotRing(capacity=700, period_s=0)
        _feed(reg, ring, seconds=5, rps=2, bad_fraction=1.0)
        engine = SloEngine(policies=(SloPolicy("a"),), min_requests=20)
        assert engine.evaluate(reg, ring) == []

    def test_default_windows_are_multiwindow(self):
        assert len(DEFAULT_WINDOWS) >= 2
        assert {w[2] for w in DEFAULT_WINDOWS} == {"page", "ticket"}


class TestAdmissionSloCoupling:
    def _page_alert(self):
        from repro.obs.slo import SloAlert

        return SloAlert(tenant="a", kind="burn_rate", severity="page",
                        window_s=60.0, value=20.0, threshold=14.4)

    def test_page_alert_shrinks_capacity(self):
        ctl = AdmissionController(queue_limit=100)
        full = ctl.capacity()
        ctl.note_slo_alert(self._page_alert())
        assert ctl.capacity() < full
        for _ in range(10):
            ctl.note_slo_alert(self._page_alert())
        assert ctl.slo_scale == pytest.approx(0.25)  # hard floor
        assert ctl.capacity() >= ctl.min_capacity

    def test_clear_restores_full_capacity(self):
        ctl = AdmissionController(queue_limit=100)
        full = ctl.capacity()
        ctl.note_slo_alert(self._page_alert())
        ctl.clear_slo_pressure()
        assert ctl.capacity() == full


class TestZeroDrift:
    def _dirty_observer(self) -> Observer:
        obs = Observer(ring=SnapshotRing(capacity=8, period_s=0.0))
        obs.count("vpu.cache.hits", 5)
        obs.gauge("vpu.cache.size", 3)
        obs.gauge("vpu.cache.lookups", 9)
        obs.observe_value("vpu.cache.age_s", 1.5)
        obs.observe_value("serve.latency_s", 0.01)
        obs.ring.record(obs.metrics, t=0.0)
        return obs

    def test_zero_gauges_drops_sketches_and_histograms(self):
        obs = self._dirty_observer()
        reset = obs.zero_gauges("vpu.cache.")
        assert reset >= 3
        assert obs.metrics.gauges["vpu.cache.size"] == 0
        assert "vpu.cache.age_s" not in obs.metrics.sketches
        assert "vpu.cache.age_s" not in obs.metrics.histograms
        # Unrelated series are untouched.
        assert "serve.latency_s" in obs.metrics.sketches

    def test_reset_telemetry_clears_ring(self):
        obs = self._dirty_observer()
        assert len(obs.ring) == 1
        obs.reset_telemetry()
        assert len(obs.ring) == 0

    def test_reset_is_idempotent(self):
        """A second reset observes exactly the state the first left —
        the zero-drift contract cache-reset paths rely on."""
        obs = self._dirty_observer()
        obs.zero_gauges("vpu.cache.")
        obs.reset_telemetry()
        first = obs.metrics.snapshot()
        first_ring = list(obs.ring.entries)
        assert obs.zero_gauges("vpu.cache.") >= 0
        obs.reset_telemetry()
        assert obs.metrics.snapshot() == first
        assert obs.ring.entries == first_ring

    def test_backend_clear_caches_resets_obs_state(self):
        """The integrity-backend module reset hooks the observer: cache
        gauges zeroed, ring emptied, and a second call is a no-op."""
        from repro.fhe import backend as backend_mod
        from repro.obs import install_obs_hook

        def state(obs):
            # Monotone counters (e.g. cache-clear tallies) may advance on
            # every call; the zero-drift contract covers the rest.
            snap = obs.metrics.snapshot()
            snap.pop("counters", None)
            return snap

        obs = self._dirty_observer()
        previous = install_obs_hook(obs)
        try:
            backend_mod.clear_caches()
            assert len(obs.ring) == 0
            snap = state(obs)
            backend_mod.clear_caches()
            assert state(obs) == snap
        finally:
            install_obs_hook(previous)
