"""Boundary-modulus regression tests for the lazy-reduction fast paths.

Three regimes matter, each with its own eligibility gate:

* ``q < 2**30`` — Shoup companions available, unclamped DIT usually ok;
* ``2**30 <= q < 2**31`` — vectorized lazy paths without Shoup; the
  unclamped DIT gate starts refusing as ``(log2(n)+1) * q**2`` crosses
  uint64;
* ``q >= 2**31`` — object-dtype scalar fallback only.

Every test asserts **bit-equality** between whichever fast path the gate
selects and the exact object-dtype reference, so a wrong gate (too
permissive *or* silently changing results) fails loudly.
"""

import numpy as np
import pytest

from repro.analysis.bounds import (
    keyswitch_lazy_accumulate_ok,
    mul_fits_uint64,
    unclamped_dit_ok,
    unclamped_dit_lane_bound,
)
from repro.arith.primes import find_ntt_prime, is_prime
from repro.fhe.keyswitch import KeySwitchKey, accumulate_keyswitch
from repro.fhe.polynomial import RnsPoly
from repro.ntt.cooley_tukey import vec_intt_dit_multi, vec_ntt_dif_multi
from repro.ntt.negacyclic import BatchedNegacyclicNtt, NegacyclicNtt
from repro.ntt.tables import get_tables

N = 64
LOG_N = 6


def _prime_just_above(order: int, floor: int) -> int:
    """Smallest NTT-friendly prime strictly above ``floor``."""
    q = floor + 1 + (-floor % order)  # first q > floor with q ≡ 1 (mod order)
    while not (q % order == 1 and is_prime(q)):
        q += order
    return q


@pytest.fixture(scope="module")
def boundary_primes():
    return {
        "below_2^30": find_ntt_prime(2 * N, 30),
        "above_2^30": _prime_just_above(2 * N, 1 << 30),
        "below_2^31": find_ntt_prime(2 * N, 31),
    }


def _rand_rows(primes, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack([
        rng.integers(0, q, size=N, dtype=np.uint64) for q in primes
    ])


class TestGateAgainstHandFormula:
    def test_never_stricter_than_old_gate(self):
        """Every (log_n, q) the old hand inequality accepted, the
        analyzer-derived gate must also accept."""
        for log_n in (1, 6, 12, 16):
            for bits in (20, 28, 30, 31):
                try:
                    q = find_ntt_prime(1 << (log_n + 1), bits)
                except ValueError:
                    continue  # no prime of that width for this order
                old = (log_n + 1) * q * q < (1 << 64)
                new = unclamped_dit_ok(log_n, q)
                assert not (old and not new), (log_n, q)

    def test_refuses_too_wide_prime(self, boundary_primes):
        # 7 * (2^31)^2 > 2^64: the widest vectorized prime must not get
        # the clamp-free pass at n = 64.
        q = boundary_primes["below_2^31"]
        assert not unclamped_dit_ok(LOG_N, q)

    def test_accepts_shoup_edge_prime(self, boundary_primes):
        q = boundary_primes["below_2^30"]
        assert unclamped_dit_ok(LOG_N, q)
        # Derived bound is the exact +q-per-stage growth formula.
        assert unclamped_dit_lane_bound(LOG_N, q) == (LOG_N + 1) * q - 1

    def test_gate_flips_with_depth(self):
        """A modulus eligible at small n loses eligibility once the
        +q-per-stage growth makes the final product overflow."""
        q = find_ntt_prime(1 << 17, 31)
        assert unclamped_dit_ok(1, q) or not unclamped_dit_ok(16, q)
        # (log_n+1) * q^2 monotonically grows with log_n: once refused,
        # stays refused.
        refused = False
        for log_n in range(1, 17):
            ok = unclamped_dit_ok(log_n, q)
            if refused:
                assert not ok
            refused = refused or not ok


class TestBoundaryModuliBitEquality:
    @pytest.mark.parametrize("which", ["below_2^30", "above_2^30",
                                       "below_2^31"])
    def test_batched_matches_scalar_reference(self, boundary_primes, which):
        q = boundary_primes[which]
        batched = BatchedNegacyclicNtt(N, (q,))
        reference = NegacyclicNtt(N, q)
        rows = _rand_rows((q,), seed=7)

        fwd = batched.forward(rows)
        ref_fwd = np.asarray(
            [int(v) for v in reference.forward(rows[0])], dtype=np.uint64)
        np.testing.assert_array_equal(fwd[0], ref_fwd)

        inv = batched.inverse(fwd)
        np.testing.assert_array_equal(inv, rows)

    @pytest.mark.parametrize("which", ["below_2^30", "above_2^30"])
    def test_unclamped_and_clamped_kernels_agree(self, boundary_primes,
                                                 which):
        """Where both are legal, the clamp-free DIT pass and the lazy
        clamped pass are the same function mod q — bit-equal after the
        final reduction."""
        from repro.ntt.cooley_tukey import (
            _stacked_stage_twiddles,
            dit_stages_lazy,
            dit_stages_unclamped,
        )

        q = boundary_primes[which]
        assert unclamped_dit_ok(LOG_N, q)
        tables = [get_tables(N, q)]
        q3 = np.array([[q]], dtype=np.uint64)[:, :, None]
        tw = _stacked_stage_twiddles(tables, "dit")
        rows = _rand_rows((q,), seed=11)

        fast = rows.copy()
        dit_stages_unclamped(fast, q3, tw)
        clamped = rows.copy()
        dit_stages_lazy(clamped, q3, 2 * q3, tw, None)
        np.testing.assert_array_equal(fast % np.uint64(q),
                                      clamped % np.uint64(q))

        # And the public entry roundtrips bit-exactly through the gate.
        evals = vec_ntt_dif_multi(rows.copy(), tables)
        np.testing.assert_array_equal(
            vec_intt_dit_multi(evals, tables), rows)

    def test_too_wide_prime_takes_clamped_path(self, boundary_primes):
        q = boundary_primes["below_2^31"]
        batched = BatchedNegacyclicNtt(N, (q,))
        assert not batched._dit_unclamped  # gate refused the fast pass
        rows = _rand_rows((q,), seed=13)
        np.testing.assert_array_equal(
            batched.inverse(batched.forward(rows)), rows)

    def test_mixed_width_stack_roundtrip(self, boundary_primes):
        primes = (boundary_primes["below_2^30"],
                  boundary_primes["above_2^30"])
        batched = BatchedNegacyclicNtt(N, primes)
        rows = _rand_rows(primes, seed=17)
        np.testing.assert_array_equal(
            batched.inverse(batched.forward(rows)), rows)


class TestKeyswitchAccumulateFallbacks:
    def _synthetic(self, primes, num_digits, seed=0):
        rng = np.random.default_rng(seed)
        n = 16
        digits = []
        pairs = []
        for i in range(num_digits):
            res = np.stack([
                rng.integers(0, q, size=n, dtype=np.uint64) for q in primes])
            digits.append(RnsPoly(res, primes, is_eval=True))
            b = np.stack([
                rng.integers(0, q, size=n, dtype=np.uint64) for q in primes])
            a = np.stack([
                rng.integers(0, q, size=n, dtype=np.uint64) for q in primes])
            pairs.append((RnsPoly(b, primes, is_eval=True),
                          RnsPoly(a, primes, is_eval=True)))
        return digits, KeySwitchKey(pairs)

    def _reference(self, digits, ksk, keep, primes):
        q_col = np.array(primes, dtype=object)[:, None]
        acc0 = np.zeros_like(digits[0].residues, dtype=object)
        acc1 = np.zeros_like(digits[0].residues, dtype=object)
        for i, digit in enumerate(digits):
            b_i, a_i = ksk.pairs[i]
            d = digit.residues.astype(object)
            acc0 = (acc0 + d * b_i.residues[keep].astype(object)) % q_col
            acc1 = (acc1 + d * a_i.residues[keep].astype(object)) % q_col
        return acc0.astype(np.uint64), acc1.astype(np.uint64)

    @pytest.mark.parametrize("bits,num_digits", [
        (28, 3),    # lazy accumulate (toy regime)
        (31, 16),   # product fits uint64, but 16 accumulations do not
        (40, 3),    # a single raw product would already wrap uint64
    ])
    def test_bit_equal_across_paths(self, bits, num_digits):
        primes = tuple(find_ntt_prime(64, bits, index=i) for i in range(2))
        keep = [0, 1]
        digits, ksk = self._synthetic(primes, num_digits, seed=bits)
        got0, got1 = accumulate_keyswitch(digits, ksk, keep, primes)
        want0, want1 = self._reference(digits, ksk, keep, primes)
        np.testing.assert_array_equal(got0.residues, want0)
        np.testing.assert_array_equal(got1.residues, want1)

    def test_gate_selects_expected_paths(self):
        q28 = find_ntt_prime(64, 28)
        q31 = find_ntt_prime(64, 31)
        q40 = find_ntt_prime(64, 40)
        assert keyswitch_lazy_accumulate_ok(3, q28)
        assert not keyswitch_lazy_accumulate_ok(16, q31)
        assert not keyswitch_lazy_accumulate_ok(3, q40)
        assert mul_fits_uint64(q31 - 1, q31 - 1)
        assert not mul_fits_uint64(q40 - 1, q40 - 1)

    def test_lazy_threshold_is_exact(self):
        """The gate accepts exactly up to D * (q-1)^2 <= 2^64 - 1."""
        q = (1 << 32) + 1  # (q-1)^2 == 2^64 exactly
        assert not keyswitch_lazy_accumulate_ok(1, q)
        q = 1 << 32  # (q-1)^2 < 2^64: one product fits, two do not
        assert keyswitch_lazy_accumulate_ok(1, q)
        assert not keyswitch_lazy_accumulate_ok(2, q)
