#!/usr/bin/env python3
"""Release gate: verify every reproduced paper number is in tolerance.

Runs the same checks the regression tests pin, as one standalone script
suitable for CI or a pre-release sanity pass.  Exits nonzero — with a
diff-style report — if any table entry drifted.

    python tools/check_tables.py
"""

from __future__ import annotations

import sys

FAILURES: list[str] = []


def check(label: str, got: float, want: float, rel_tol: float) -> None:
    err = abs(got - want) / abs(want)
    status = "ok " if err <= rel_tol else "FAIL"
    print(f"[{status}] {label:55s} got {got:12.4f} want {want:12.4f} "
          f"({100 * err:5.2f}% vs {100 * rel_tol:.0f}% tol)")
    if err > rel_tol:
        FAILURES.append(label)


def check_table2() -> None:
    from repro.baselines import (
        ark_network_cost,
        bts_network_cost,
        f1_network_cost,
        sharp_network_cost,
    )
    from repro.hwmodel import our_network_cost, vpu_cost

    paper = {
        "F1": (55616.42, 300306.61, 93.50, 842.12),
        "BTS": (19405.16, 264095.35, 45.13, 793.75),
        "ARK": (9480.50, 254170.69, 46.35, 794.97),
        "SHARP": (44453.51, 289143.70, 44.04, 792.66),
        "Ours": (5913.62, 250603.81, 15.59, 764.21),
    }
    fns = {"F1": f1_network_cost, "BTS": bts_network_cost,
           "ARK": ark_network_cost, "SHARP": sharp_network_cost,
           "Ours": our_network_cost}
    for name, fn in fns.items():
        net = fn(64)
        vpu = vpu_cost(64, net)
        na, va, np_, vp = paper[name]
        check(f"Table II {name} network area", net.area_um2, na, 0.12)
        check(f"Table II {name} network power", net.power_mw, np_, 0.12)
        check(f"Table II {name} VPU area", vpu.area_um2, va, 0.05)
        check(f"Table II {name} VPU power", vpu.power_mw, vp, 0.05)


def check_table3() -> None:
    from repro.perf import PAPER_TABLE_III, utilization_report

    for n, (paper_ntt, paper_autom) in sorted(PAPER_TABLE_III.items()):
        row = utilization_report(n)
        label = f"Table III N=2^{n.bit_length() - 1} NTT utilization"
        err = abs(row.ntt_utilization - paper_ntt)
        status = "ok " if err <= 0.05 else "FAIL"
        print(f"[{status}] {label:55s} got {row.ntt_utilization:12.4f} "
              f"want {paper_ntt:12.4f} ({100 * err:5.2f}pp vs 5pp tol)")
        if err > 0.05:
            FAILURES.append(label)
        if row.automorphism_utilization != paper_autom:
            FAILURES.append(f"{label} (automorphism)")


def check_table4() -> None:
    from repro.hwmodel import our_network_cost

    paper = {4: (208.99, 0.59), 8: (509.45, 1.38), 16: (1180.83, 3.13),
             32: (2664.50, 7.02), 64: (5913.62, 15.59),
             128: (12975.47, 34.28), 256: (28226.38, 75.02)}
    for m, (area, power) in paper.items():
        c = our_network_cost(m)
        check(f"Table IV m={m} area", c.area_um2, area, 0.10)
        check(f"Table IV m={m} power", c.power_mw, power, 0.10)


def main() -> int:
    check_table2()
    check_table3()
    check_table4()
    if FAILURES:
        print(f"\n{len(FAILURES)} table entries out of tolerance:")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print("\nall reproduced table entries within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
