#!/usr/bin/env python
"""Benchmark regression sentinel — thin CLI over :mod:`repro.obs.sentinel`.

Two modes:

* no positional arguments — the CI gate: regenerate a quick candidate
  for every committed ``BENCH_*`` artifact and compare under the
  portable spec set (``python -m repro.obs --sentinel`` is the same
  entry point);
* ``--baseline B --candidate C [C ...]`` — full same-host comparison of
  two (or a best-of-group of) artifact files, including the relative
  latency/throughput thresholds.

Exit status is non-zero on any regression.

Run:  PYTHONPATH=src python tools/bench_sentinel.py [--report PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.export import host_envelope  # noqa: E402
from repro.obs.sentinel import compare_files, run_sentinel  # noqa: E402


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline artifact for a full comparison")
    parser.add_argument("--candidate", type=Path, action="append",
                        default=None,
                        help="candidate artifact(s); repeat for a "
                             "best-of-group comparison")
    parser.add_argument("--report", type=Path,
                        default=Path("SENTINEL_report.json"),
                        help="report path (default SENTINEL_report.json)")
    parser.add_argument("--no-regen", action="store_true",
                        help="CI mode: validate committed envelopes only, "
                             "skip the working-tree regeneration")
    args = parser.parse_args(argv)

    if (args.baseline is None) != (args.candidate is None):
        parser.error("--baseline and --candidate go together")

    if args.baseline is not None:
        checks = compare_files(args.baseline, args.candidate)
        failed = [c for c in checks if not c.ok]
        for check in checks:
            mark = "PASS" if check.ok else "FAIL"
            print(f"{mark} {check.path} [{check.cls}]: {check.detail}")
        report = host_envelope("sentinel")
        report["ok"] = not failed
        report["artifacts"] = [{
            "file": str(args.baseline), "bench": "full-compare",
            "ok": not failed, "checks": [c.to_json() for c in checks],
        }]
        args.report.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.report}")
        print("PASS" if not failed else f"FAIL ({len(failed)} regressions)")
        return 0 if not failed else 1

    result = run_sentinel(REPO_ROOT, regen=not args.no_regen,
                          report_path=args.report)
    print("PASS" if result.ok else "FAIL")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
